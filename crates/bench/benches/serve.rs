//! Criterion benchmarks of the serve-mode incremental re-fit: the cost
//! of one daemon tick (a single-workload delta refreshed through
//! `EngineSession`) against a cold full re-plan of the same 50-app pool.
//!
//! The acceptance bar for the online planner is a per-tick latency at
//! least 10× below the full re-plan — the delta path recomputes one
//! touched server where the cold path re-sums and re-searches every
//! server in the pool. Results are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_placement::server::ServerSpec;
use ropus_placement::session::EngineSession;
use ropus_placement::workload::Workload;
use ropus_qos::PoolCommitments;
use ropus_trace::gen::{case_study_fleet, FleetConfig};

const APPS: usize = 50;

fn bench_pool() -> (Vec<Workload>, Vec<usize>, PoolCommitments) {
    let case = CaseConfig::table1()[2];
    let fleet = case_study_fleet(&FleetConfig {
        apps: APPS,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let workloads: Vec<Workload> = translate_fleet(&fleet, &case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();
    // First-fit with at most two apps per server: a wide steady-state
    // pool (the shape serve converges to) whose every server is feasible.
    let commitments = case.commitments();
    let mut session = EngineSession::new(ServerSpec::sixteen_way(), commitments);
    let mut assignment = Vec::with_capacity(workloads.len());
    for workload in &workloads {
        let server = (0..session.server_count())
            .find(|&s| {
                session.server_members(s).len() < 2
                    && session
                        .probe(workload, s)
                        .is_ok_and(|required| required.is_some())
            })
            .unwrap_or(session.server_count());
        session
            .admit(workload.clone(), server)
            .expect("bench admission succeeds");
        assignment.push(server);
    }
    (workloads, assignment, commitments)
}

fn bench_serve_tick(c: &mut Criterion) {
    let (workloads, assignment, commitments) = bench_pool();
    let mut group = c.benchmark_group("serve_tick");

    // Steady state: everything placed and refreshed. Each tick departs
    // one application and re-admits it — the single-server delta a live
    // daemon processes — and refreshes exactly the touched server.
    let mut session = EngineSession::new(ServerSpec::sixteen_way(), commitments)
        .with_assignment(&workloads, &assignment)
        .expect("bulk load succeeds");
    session.refresh();
    let victim = workloads.last().expect("non-empty fleet").clone();
    let server = *assignment.last().expect("non-empty assignment");
    group.bench_function("incremental_tick_50_apps", |b| {
        b.iter(|| {
            let id = session.find(victim.name()).expect("victim is live");
            session.depart(id).expect("depart succeeds");
            session
                .admit(victim.clone(), black_box(server))
                .expect("re-admit succeeds");
            black_box(session.refresh().recomputed)
        });
    });

    // The cold path serve replaces: bulk-load the whole fleet and re-fit
    // every server from scratch.
    group.bench_function("full_replan_50_apps", |b| {
        b.iter(|| {
            let mut cold = EngineSession::new(ServerSpec::sixteen_way(), commitments)
                .with_assignment(black_box(&workloads), &assignment)
                .expect("bulk load succeeds");
            black_box(cold.report().expect("plan is feasible"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_serve_tick);
criterion_main!(benches);
