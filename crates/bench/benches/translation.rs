//! Criterion benchmarks of the QoS translation (§V): the portfolio
//! partitioning, the `M_degr` cap, and the iterative `T_degr` analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ropus_obs::ObsCtx;
use std::hint::black_box;

use ropus_bench::paper_fleet;
use ropus_qos::portfolio::breakpoint;
use ropus_qos::translation::translate;
use ropus_qos::{AppQos, CosSpec, DegradationSpec, UtilizationBand};

fn bench_breakpoint(c: &mut Criterion) {
    let band = UtilizationBand::new(0.5, 0.66).unwrap();
    let cos2 = CosSpec::new(0.6, 60).unwrap();
    c.bench_function("breakpoint", |b| {
        b.iter(|| breakpoint(black_box(band), black_box(&cos2)))
    });
}

fn bench_translate(c: &mut Criterion) {
    let fleet = paper_fleet();
    let band = UtilizationBand::new(0.5, 0.66).unwrap();
    // app-14 is a smooth app where the T_degr loop actually iterates.
    let app = &fleet[13];
    let mut group = c.benchmark_group("translate_4_weeks");
    for (label, t_degr) in [("no_time_limit", None), ("t_degr_30min", Some(30))] {
        let qos = AppQos::new(band, Some(DegradationSpec::new(0.03, 0.9, t_degr).unwrap()));
        for theta in [0.6, 0.95] {
            let cos2 = CosSpec::new(theta, 60).unwrap();
            group.bench_with_input(BenchmarkId::new(label, theta), &cos2, |b, cos2| {
                b.iter(|| translate(black_box(&app.trace), &qos, cos2, ObsCtx::none()).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_fleet_translation(c: &mut Criterion) {
    let fleet = paper_fleet();
    let qos = AppQos::paper_default(Some(30));
    let cos2 = CosSpec::new(0.6, 60).unwrap();
    c.bench_function("translate_whole_fleet_26_apps", |b| {
        b.iter(|| {
            for app in &fleet {
                black_box(translate(&app.trace, &qos, &cos2, ObsCtx::none()).unwrap());
            }
        })
    });
}

criterion_group!(
    benches,
    bench_breakpoint,
    bench_translate,
    bench_fleet_translation
);
criterion_main!(benches);
