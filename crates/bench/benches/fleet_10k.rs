//! Fleet-scale benchmark for the columnar engine: 1k / 5k / 10k
//! applications × 4 weeks of 5-minute samples through the full
//! translate → aggregate → required-capacity plan. The `plan` series is
//! the headline number (the whole pipeline, like `fleet_50x4w`); the
//! `aggregate` series isolates the slot-major [`AggregateLoad`] build the
//! sum-tree refactor targets. Sample counts are reduced — a single 10k
//! plan runs for seconds, and criterion's defaults would take minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ropus::case_study::{translate_fleet_threaded, CaseConfig};
use ropus_bench::fleet_n;
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;
use ropus_placement::SlotArena;
use ropus_trace::gen::AppWorkload;

/// Benchmark sizes: 1k, 5k, and the headline 10k applications.
const SIZES: [usize; 3] = [1_000, 5_000, 10_000];

/// Generous per-app capacity ceiling so the binary search always has a
/// feasible upper bound at every fleet size.
fn capacity_limit(apps: usize) -> f64 {
    64.0 * apps as f64
}

fn translated_workloads(fleet: &[AppWorkload], case: &CaseConfig) -> Vec<Workload> {
    translate_fleet_threaded(fleet, case, 1)
        .expect("case-study translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect()
}

fn plan(fleet: &[AppWorkload], case: &CaseConfig, arena: &mut SlotArena) -> Option<f64> {
    let commitments = case.commitments();
    let workloads = translated_workloads(fleet, case);
    let refs: Vec<&Workload> = workloads.iter().collect();
    let load = AggregateLoad::of_pooled(&refs, arena).expect("aligned fleet");
    let required = FitRequest::new(&load, &commitments)
        .with_options(FitOptions::new().with_tolerance(0.05))
        .required_capacity(capacity_limit(fleet.len()));
    load.recycle(arena);
    required
}

fn bench_plan(c: &mut Criterion) {
    let case = CaseConfig::table1()[2];
    let mut group = c.benchmark_group("fleet_10k");
    group.sample_size(10);
    for apps in SIZES {
        let fleet = fleet_n(apps);
        let mut arena = SlotArena::new();
        group.bench_with_input(BenchmarkId::new("plan", apps), &fleet, |b, fleet| {
            b.iter(|| plan(black_box(fleet), &case, &mut arena))
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let case = CaseConfig::table1()[2];
    let mut group = c.benchmark_group("fleet_10k");
    group.sample_size(10);
    for apps in SIZES {
        let workloads = translated_workloads(&fleet_n(apps), &case);
        let refs: Vec<&Workload> = workloads.iter().collect();
        let mut arena = SlotArena::new();
        group.bench_with_input(BenchmarkId::new("aggregate", apps), &refs, |b, refs| {
            b.iter(|| {
                let load =
                    AggregateLoad::of_pooled(black_box(refs), &mut arena).expect("aligned fleet");
                let peak = load.total_peak();
                load.recycle(&mut arena);
                peak
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan, bench_aggregate);
criterion_main!(benches);
