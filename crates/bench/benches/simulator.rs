//! Criterion benchmarks of the placement fit simulator (§VI-A): the θ
//! measurement, the deadline replay, and the required-capacity binary
//! search that dominate consolidation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::paper_fleet;
use ropus_placement::simulator::{
    access_probability, deadline_satisfied, AggregateLoad, FitOptions, FitRequest,
};
use ropus_placement::workload::Workload;

fn loads() -> (Vec<Workload>, AggregateLoad) {
    let fleet = paper_fleet();
    let case = CaseConfig::table1()[2];
    let workloads: Vec<Workload> = translate_fleet(&fleet, &case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();
    let refs: Vec<&Workload> = workloads.iter().take(4).collect();
    let load = AggregateLoad::of(&refs).expect("aligned fleet");
    (workloads, load)
}

fn bench_theta_measurement(c: &mut Criterion) {
    let (_w, load) = loads();
    c.bench_function("access_probability_4_apps_4_weeks", |b| {
        b.iter(|| access_probability(black_box(&load), black_box(12.0)))
    });
}

fn bench_deadline(c: &mut Criterion) {
    let (_w, load) = loads();
    c.bench_function("deadline_replay_4_apps_4_weeks", |b| {
        b.iter(|| deadline_satisfied(black_box(&load), black_box(12.0), black_box(12)))
    });
}

fn bench_fit_and_search(c: &mut Criterion) {
    let (_w, load) = loads();
    let commitments = CaseConfig::table1()[2].commitments();
    let mut group = c.benchmark_group("fit");
    group.bench_function("evaluate_fit", |b| {
        b.iter(|| FitRequest::new(black_box(&load), &commitments).evaluate(black_box(12.0)))
    });
    for tolerance in [0.5, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("required_capacity", tolerance),
            &tolerance,
            |b, &tol| {
                b.iter(|| {
                    FitRequest::new(black_box(&load), &commitments)
                        .with_options(FitOptions::new().with_tolerance(tol))
                        .required_capacity(16.0)
                })
            },
        );
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let (workloads, _) = loads();
    let refs: Vec<&Workload> = workloads.iter().collect();
    c.bench_function("aggregate_26_apps_4_weeks", |b| {
        b.iter(|| AggregateLoad::of(black_box(&refs)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_theta_measurement,
    bench_deadline,
    bench_fit_and_search,
    bench_aggregation
);
criterion_main!(benches);
