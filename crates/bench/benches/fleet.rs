//! Fleet-scale end-to-end benchmark (~2x the paper's §VII case study):
//! 50 applications × 4 weeks of 5-minute samples pushed through the full
//! translate → aggregate → required-capacity pipeline. This is the path
//! whose per-trace constant factor the zero-copy trace representation
//! targets; the companion `workload_clone` and `aggregate` groups isolate
//! the clone and validation costs on the same fleet.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::fleet_50;
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;
use ropus_trace::gen::AppWorkload;

/// Capacity ceiling for the 50-app search; generously above the fleet's
/// aggregate peak so the binary search always has a feasible upper bound.
const CAPACITY_LIMIT: f64 = 2048.0;

fn translated_workloads(fleet: &[AppWorkload], case: &CaseConfig) -> Vec<Workload> {
    translate_fleet(fleet, case)
        .expect("case-study translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect()
}

fn bench_end_to_end(c: &mut Criterion) {
    let fleet = fleet_50();
    let case = CaseConfig::table1()[2];
    let commitments = case.commitments();
    c.bench_function("fleet_50x4w/translate_aggregate_required", |b| {
        b.iter(|| {
            let workloads = translated_workloads(black_box(&fleet), &case);
            let refs: Vec<&Workload> = workloads.iter().collect();
            let load = AggregateLoad::of(&refs).expect("aligned fleet");
            FitRequest::new(&load, &commitments)
                .with_options(FitOptions::new().with_tolerance(0.05))
                .required_capacity(CAPACITY_LIMIT)
        })
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let fleet = fleet_50();
    let case = CaseConfig::table1()[2];
    let workloads = translated_workloads(&fleet, &case);
    let refs: Vec<&Workload> = workloads.iter().collect();
    c.bench_function("fleet_50x4w/aggregate", |b| {
        b.iter(|| AggregateLoad::of(black_box(&refs)).expect("aligned fleet"))
    });
}

fn bench_workload_clone(c: &mut Criterion) {
    let fleet = fleet_50();
    let case = CaseConfig::table1()[2];
    let workloads = translated_workloads(&fleet, &case);
    c.bench_function("fleet_50x4w/workload_clone", |b| {
        b.iter(|| {
            let cloned: Vec<Workload> = black_box(&workloads).to_vec();
            cloned
        })
    });
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_aggregate,
    bench_workload_clone
);
criterion_main!(benches);
