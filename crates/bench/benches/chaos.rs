//! Criterion benchmarks of the fault-injection replay: the per-slot
//! degraded-mode simulation that turns a placement plus a failure
//! schedule into a `ChaosReport`.
//!
//! Planning is benched separately (`placement.rs`); here the placement
//! is computed once in setup and only `chaos_replay_on` is measured, at
//! one and four worker threads, plus the stochastic schedule draw that
//! feeds it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ropus::prelude::*;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn framework(threads: usize) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(
            CosSpec::new(0.9, 60).expect("valid CoS spec"),
        ))
        .options(ConsolidationOptions::fast(9).with_threads(threads))
        .failure_scope(FailureScope::AllApplications)
        .build()
}

fn apps(n: usize) -> Vec<AppSpec> {
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy()))
    .collect()
}

fn bench_replay_scripted(c: &mut Criterion) {
    let apps = apps(12);
    let mut group = c.benchmark_group("chaos_replay_scripted_12_apps");
    for threads in [1usize, 4] {
        let fw = framework(threads);
        let placement = fw.plan_normal_only(&apps).expect("placement succeeds");
        // One 3-hour outage of the first placed server, mid-week.
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 1008,
            duration: 36,
        }])
        .expect("valid schedule");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, _| {
                b.iter(|| {
                    black_box(
                        fw.chaos_replay_on(
                            black_box(&apps),
                            black_box(&placement),
                            black_box(&schedule),
                            DegradationPolicy::default(),
                        )
                        .expect("replay succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_stochastic_draw(c: &mut Criterion) {
    let horizon = Calendar::five_minute().slots_per_week();
    c.bench_function("chaos_schedule_stochastic_8_servers", |b| {
        b.iter(|| {
            black_box(
                FailureSchedule::stochastic(
                    &StochasticProfile {
                        seed: 42,
                        mtbf_slots: 700,
                        mttr_slots: 48,
                    },
                    black_box(8),
                    black_box(horizon),
                )
                .expect("draw succeeds"),
            )
        })
    });
}

criterion_group!(benches, bench_replay_scripted, bench_stochastic_draw);
criterion_main!(benches);
