//! Criterion benchmarks of the consolidation search (§VI-B): genetic
//! algorithm vs the greedy baselines on translated case-study workloads,
//! plus the engine-level axes the placement refactor introduced —
//! serial vs parallel population scoring and cold vs warm fit cache.
//!
//! The paper reports ~10 minutes of CPU time on a 3.4 GHz Pentium for the
//! full 26-app exercise; only relative algorithmic cost is meaningful for
//! the reproduction, so the benchmark uses a 12-app subset and reduced
//! search options to keep iterations statistically sound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ropus_obs::ObsCtx;
use std::hint::black_box;

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator};
use ropus_placement::engine::FitEngine;
use ropus_placement::greedy::{place, GreedyStrategy};
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;
use ropus_trace::gen::{case_study_fleet, FleetConfig};

fn bench_workloads() -> Vec<Workload> {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 12,
        weeks: 2,
        ..FleetConfig::paper()
    });
    translate_fleet(&fleet, &CaseConfig::table1()[2])
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect()
}

fn bench_greedy(c: &mut Criterion) {
    let workloads = bench_workloads();
    let case = CaseConfig::table1()[2];
    let mut group = c.benchmark_group("greedy_12_apps");
    for strategy in GreedyStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    // A fresh engine per iteration so the fit cache does
                    // not carry over (the cache is the point of reuse in
                    // production, but here we want the cold cost).
                    let evaluator = FitEngine::new(
                        &workloads,
                        ServerSpec::sixteen_way(),
                        case.commitments(),
                        0.1,
                    );
                    black_box(place(&evaluator, strategy).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_ga(c: &mut Criterion) {
    let workloads = bench_workloads();
    let case = CaseConfig::table1()[2];
    let mut group = c.benchmark_group("consolidation_12_apps");
    group.sample_size(10);
    group.bench_function("genetic_algorithm_fast", |b| {
        b.iter(|| {
            let consolidator = Consolidator::new(
                ServerSpec::sixteen_way(),
                case.commitments(),
                ConsolidationOptions::fast(7),
            );
            black_box(
                consolidator
                    .consolidate(&workloads, ObsCtx::none())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// Serial vs parallel population scoring: the same fixed-seed search on
/// 1, 2, and 4 worker threads. Results are bit-identical across the axis;
/// only wall time should move.
fn bench_threads(c: &mut Criterion) {
    let workloads = bench_workloads();
    let case = CaseConfig::table1()[2];
    let mut group = c.benchmark_group("consolidation_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let consolidator = Consolidator::new(
                        ServerSpec::sixteen_way(),
                        case.commitments(),
                        ConsolidationOptions::fast(7).with_threads(threads),
                    );
                    black_box(
                        consolidator
                            .consolidate(&workloads, ObsCtx::none())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Cold vs warm fit cache: repeated required-capacity queries over the
/// same member sets, against a fresh engine per iteration (every query is
/// a binary search) and against a pre-warmed engine (every query is a
/// hash lookup).
fn bench_cache(c: &mut Criterion) {
    let workloads = bench_workloads();
    let case = CaseConfig::table1()[2];
    let member_sets: Vec<Vec<u16>> = (0..workloads.len() as u16)
        .map(|i| vec![i, (i + 1) % workloads.len() as u16])
        .collect();
    let mut group = c.benchmark_group("fit_cache");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let engine = FitEngine::new(
                &workloads,
                ServerSpec::sixteen_way(),
                case.commitments(),
                0.1,
            );
            for set in &member_sets {
                black_box(engine.server_required(set));
            }
        })
    });
    let warm = FitEngine::new(
        &workloads,
        ServerSpec::sixteen_way(),
        case.commitments(),
        0.1,
    );
    for set in &member_sets {
        warm.server_required(set);
    }
    group.bench_function("warm", |b| {
        b.iter(|| {
            for set in &member_sets {
                black_box(warm.server_required(set));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_ga, bench_threads, bench_cache);
criterion_main!(benches);
