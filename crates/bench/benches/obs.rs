//! Criterion benchmarks of the observability layer's overhead.
//!
//! Two questions: what does a *disabled* collector cost the pipeline
//! (the price every caller pays, target: indistinguishable), and what
//! does an *enabled* one cost (the price of `--obs`, target: < 3% on a
//! 50-app planning run, recorded in EXPERIMENTS.md)? A micro-bench of
//! the recording primitives pins the per-call cost behind both numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ropus::prelude::*;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn framework() -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(
            CosSpec::new(0.9, 60).expect("valid CoS spec"),
        ))
        .options(ConsolidationOptions::fast(9))
        .build()
}

fn apps(n: usize) -> Vec<AppSpec> {
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy()))
    .collect()
}

/// Translate + consolidate a 50-app fleet with the collector off,
/// deterministic (null clock), and wall-clock enabled. The three bars
/// are directly comparable: same fleet, same seed, same options.
fn bench_pipeline_overhead(c: &mut Criterion) {
    let apps = apps(50);
    let fw = framework();
    let mut group = c.benchmark_group("obs_pipeline_50_apps");
    group.sample_size(10);
    group.bench_function("off", |b| {
        b.iter(|| {
            black_box(
                fw.plan_normal_only(black_box(&apps))
                    .expect("planning succeeds"),
            )
        })
    });
    group.bench_function("deterministic", |b| {
        b.iter(|| {
            let obs = Obs::deterministic();
            black_box(
                fw.plan_normal_only(PlanRequest::of(black_box(&apps)).with_obs(&obs))
                    .expect("planning succeeds"),
            )
        })
    });
    group.bench_function("wall", |b| {
        b.iter(|| {
            let obs = Obs::wall();
            black_box(
                fw.plan_normal_only(PlanRequest::of(black_box(&apps)).with_obs(&obs))
                    .expect("planning succeeds"),
            )
        })
    });
    group.finish();
}

/// Per-call cost of the recording primitives, disabled vs enabled.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    for (label, obs) in [("off", Obs::off()), ("on", Obs::deterministic())] {
        group.bench_function(format!("counter_{label}"), |b| {
            b.iter(|| obs.counter(black_box("bench.counter"), black_box(1)))
        });
        group.bench_function(format!("histogram_{label}"), |b| {
            b.iter(|| {
                obs.histogram(
                    black_box("bench.histogram"),
                    &[0.25, 0.5, 0.75, 1.0],
                    black_box(0.6),
                )
            })
        });
        group.bench_function(format!("span_{label}"), |b| {
            b.iter(|| drop(black_box(obs.span(black_box("bench.span")))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_overhead, bench_primitives);
criterion_main!(benches);
