//! Shared plumbing for the R-Opus experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); this library holds the fleet
//! loader, the common output helpers, and the result-file writer they all
//! share so that EXPERIMENTS.md can be assembled from machine-readable
//! artifacts under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use ropus_trace::gen::{case_study_fleet, AppWorkload, FleetConfig};

/// The full-scale case-study fleet (26 apps, 4 weeks, 5-minute slots).
pub fn paper_fleet() -> Vec<AppWorkload> {
    case_study_fleet(&FleetConfig::paper())
}

/// A fleet-scale variant at roughly 2x the paper's case study (50 apps,
/// 4 weeks, 5-minute slots) used by the end-to-end `fleet` benchmark.
pub fn fleet_50() -> Vec<AppWorkload> {
    fleet_n(50)
}

/// An `apps`-sized fleet on the paper's calendar (4 weeks, 5-minute
/// slots), used by the `fleet_10k` scale benchmark and its CI smoke bin.
pub fn fleet_n(apps: usize) -> Vec<AppWorkload> {
    case_study_fleet(&FleetConfig {
        apps,
        ..FleetConfig::paper()
    })
}

/// Resolves the repository `results/` directory (created on demand):
/// prefers `$ROPUS_RESULTS`, falling back to `<crate>/../../results`.
///
/// # Panics
///
/// Panics if the directory cannot be created — experiment binaries have no
/// useful way to continue without a result sink.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("ROPUS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes tab-separated rows (with a header) to `results/<name>.tsv` and
/// echoes the path.
///
/// # Panics
///
/// Panics on I/O failure, as the experiment's whole purpose is the file.
pub fn write_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.tsv"));
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    fs::write(&path, out).expect("write result file");
    eprintln!("[results] wrote {}", path.display());
}

/// Formats a float with fixed precision for table output.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_matches_study_shape() {
        let fleet = paper_fleet();
        assert_eq!(fleet.len(), 26);
        assert!(fleet.iter().all(|a| a.trace.weeks() == 4));
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn write_tsv_creates_file() {
        let dir = std::env::temp_dir().join("ropus-bench-test");
        std::env::set_var("ROPUS_RESULTS", &dir);
        write_tsv("unit-test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let content = fs::read_to_string(dir.join("unit-test.tsv")).unwrap();
        assert_eq!(content, "a\tb\n1\t2\n");
        std::env::remove_var("ROPUS_RESULTS");
    }
}
