//! Figure 3: sensitivity of breakpoint `p` and normalized maximum
//! allocation to the resource access probability `θ` of CoS2, for
//! `(U_low, U_high) = (0.5, 0.66)`.
//!
//! Run with: `cargo run --release -p ropus-bench --bin fig3`

use ropus_bench::{fmt, write_tsv};
use ropus_qos::portfolio::{breakpoint, normalized_max_allocation};
use ropus_qos::{CosSpec, UtilizationBand};

fn main() {
    let band = UtilizationBand::new(0.5, 0.66).expect("paper constants");
    println!("Figure 3: breakpoint and max-allocation trends vs θ, band (0.5, 0.66)");
    println!(
        "{:>6} {:>12} {:>22}",
        "θ", "breakpoint p", "normalized max alloc"
    );

    let mut rows = Vec::new();
    let mut theta: f64 = 0.50;
    while theta <= 1.0 + 1e-9 {
        let cos2 = CosSpec::new(theta.min(1.0), 60).expect("valid θ");
        let p = breakpoint(band, &cos2);
        let max_alloc = normalized_max_allocation(band, &cos2);
        println!("{theta:>6.2} {p:>12.4} {max_alloc:>22.4}");
        rows.push(vec![fmt(theta, 2), fmt(p, 6), fmt(max_alloc, 6)]);
        theta += 0.01;
    }
    write_tsv(
        "fig3_breakpoint_vs_theta",
        &["theta", "breakpoint", "normalized_max_allocation"],
        &rows,
    );

    // The paper's headline comparison: θ = 0.95 needs ~20% less than 0.6.
    let hi = normalized_max_allocation(band, &CosSpec::new(0.95, 60).unwrap());
    let lo = normalized_max_allocation(band, &CosSpec::new(0.6, 60).unwrap());
    println!(
        "\nmax allocation at θ=0.95 is {:.1}% lower than at θ=0.6 (paper: ~20%)",
        100.0 * (1.0 - hi / lo)
    );
}
