//! Figures 8a/8b: percentage of measurements with degraded performance
//! (utilization of allocation in `(U_high, U_degr]` under worst-case CoS2
//! delivery) per application, for the same `T_degr` grid as Fig. 7, for
//! θ = 0.95 (a) and θ = 0.6 (b).
//!
//! Run with: `cargo run --release -p ropus-bench --bin fig8`

use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_obs::ObsCtx;
use ropus_qos::translation::translate;
use ropus_qos::{AppQos, CosSpec, DegradationSpec, UtilizationBand};

const LIMITS: [(&str, Option<u32>); 4] = [
    ("none", None),
    ("120min", Some(120)),
    ("60min", Some(60)),
    ("30min", Some(30)),
];

fn main() {
    let fleet = paper_fleet();
    let band = UtilizationBand::new(0.5, 0.66).expect("paper constants");

    for (panel, theta) in [("a", 0.95), ("b", 0.6)] {
        let cos2 = CosSpec::new(theta, 60).expect("valid θ");
        println!("\nFigure 8{panel}: % of measurements with degraded performance, θ = {theta}");
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8}",
            "app", "none", "2h", "1h", "30min"
        );
        let mut rows = Vec::new();
        let mut worst = [0.0f64; 4];
        for app in &fleet {
            let mut row = vec![app.name.clone()];
            let mut printed = format!("{:<8}", app.name);
            for (i, (_, limit)) in LIMITS.iter().enumerate() {
                let qos = AppQos::new(
                    band,
                    Some(DegradationSpec::new(0.03, 0.9, *limit).expect("paper constants")),
                );
                let report = translate(&app.trace, &qos, &cos2, ObsCtx::none())
                    .expect("translation succeeds")
                    .report;
                let pct = 100.0 * report.degraded_fraction;
                worst[i] = worst[i].max(pct);
                printed.push_str(&format!(" {pct:>8.2}"));
                row.push(fmt(pct, 4));
            }
            println!("{printed}");
            rows.push(row);
        }
        write_tsv(
            &format!("fig8{panel}_degraded_pct_theta_{theta}"),
            &["app", "none", "t120", "t60", "t30"],
            &rows,
        );
        println!(
            "worst app under T_degr=30min: {:.2}% (paper: <0.5% at θ=0.95, <1.5% at θ=0.6; \
             3% allowed)",
            worst[3]
        );
    }
}
