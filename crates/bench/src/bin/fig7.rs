//! Figures 7a/7b: per-application reduction in maximum CPU allocation
//! (`MaxCapReduction`) with `M_degr = 3%` relative to `M_degr = 0%`, under
//! four time-limits (`T_degr` = none, 2 h, 1 h, 30 min), for θ = 0.95 (a)
//! and θ = 0.6 (b).
//!
//! Run with: `cargo run --release -p ropus-bench --bin fig7`

use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_obs::ObsCtx;
use ropus_qos::translation::translate;
use ropus_qos::{AppQos, CosSpec, DegradationSpec, UtilizationBand};

const LIMITS: [(&str, Option<u32>); 4] = [
    ("none", None),
    ("120min", Some(120)),
    ("60min", Some(60)),
    ("30min", Some(30)),
];

fn main() {
    let fleet = paper_fleet();
    let band = UtilizationBand::new(0.5, 0.66).expect("paper constants");
    let bound = 100.0 * (1.0 - 0.66 / 0.9);

    for (panel, theta) in [("a", 0.95), ("b", 0.6)] {
        let cos2 = CosSpec::new(theta, 60).expect("valid θ");
        println!("\nFigure 7{panel}: MaxCapReduction (%) per app, θ = {theta}");
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8}",
            "app", "none", "2h", "1h", "30min"
        );
        let mut rows = Vec::new();
        for app in &fleet {
            let strict = translate(&app.trace, &AppQos::strict(band), &cos2, ObsCtx::none())
                .expect("translation succeeds")
                .report
                .peak_allocation;
            let mut row = vec![app.name.clone()];
            let mut printed = format!("{:<8}", app.name);
            for (_, limit) in LIMITS {
                let qos = AppQos::new(
                    band,
                    Some(DegradationSpec::new(0.03, 0.9, limit).expect("paper constants")),
                );
                let relaxed = translate(&app.trace, &qos, &cos2, ObsCtx::none())
                    .expect("translation succeeds")
                    .report;
                let reduction = if strict > 0.0 {
                    100.0 * (1.0 - relaxed.peak_allocation / strict)
                } else {
                    0.0
                };
                printed.push_str(&format!(" {reduction:>8.1}"));
                row.push(fmt(reduction, 3));
            }
            println!("{printed}");
            rows.push(row);
        }
        write_tsv(
            &format!("fig7{panel}_maxcapreduction_theta_{theta}"),
            &["app", "none", "t120", "t60", "t30"],
            &rows,
        );
        println!("(formula-5 upper bound: {bound:.1}%)");
    }
}
