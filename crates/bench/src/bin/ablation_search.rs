//! Ablation: genetic search vs greedy baselines.
//!
//! §VIII of the paper claims the GA "compared favorably to the greedy
//! algorithms we implemented ourselves". This experiment runs all four
//! search strategies on the same translated case-study fleet (case 2 QoS)
//! and reports servers used, C_requ, score, and wall time.
//!
//! Run with: `cargo run --release -p ropus-bench --bin ablation_search`

use ropus_obs::{Clock, ObsCtx, WallClock};

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator};
use ropus_placement::engine::FitEngine;
use ropus_placement::greedy::{place, servers_used, GreedyStrategy};
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;

fn main() {
    let fleet = paper_fleet();
    let case = CaseConfig::table1()[1];
    let workloads: Vec<Workload> = translate_fleet(&fleet, &case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();

    println!("Search ablation (case 2 QoS: M_degr 3%, θ 0.6, T_degr 30 min)");
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}",
        "strategy", "servers", "C_requ", "score", "ms"
    );
    let mut rows = Vec::new();

    for strategy in GreedyStrategy::ALL {
        let evaluator = FitEngine::new(
            &workloads,
            ServerSpec::sixteen_way(),
            case.commitments(),
            0.05,
        );
        let clock = WallClock::new();
        let assignment = place(&evaluator, strategy).expect("greedy placement succeeds");
        let elapsed = clock.now_ms() as u128;
        let n = servers_used(&assignment);
        let (score, feasible) = evaluator.evaluate(&assignment, n);
        assert!(feasible);
        let c_requ: f64 = (0..n)
            .map(|srv| {
                let members: Vec<u16> = assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s == srv)
                    .map(|(i, _)| i as u16)
                    .collect();
                evaluator
                    .server_required(&members)
                    .expect("feasible server fits")
            })
            .sum();
        let label = format!("{strategy:?}");
        println!("{label:<22} {n:>8} {c_requ:>10.1} {score:>10.3} {elapsed:>10}");
        rows.push(vec![
            label,
            n.to_string(),
            fmt(c_requ, 2),
            fmt(score, 4),
            elapsed.to_string(),
        ]);
    }

    let consolidator = Consolidator::new(
        ServerSpec::sixteen_way(),
        case.commitments(),
        ConsolidationOptions::thorough(0x0DE5),
    );
    let clock = WallClock::new();
    let report = consolidator
        .consolidate(&workloads, ObsCtx::none())
        .expect("GA consolidation succeeds");
    let elapsed = clock.now_ms() as u128;
    println!(
        "{:<22} {:>8} {:>10.1} {:>10.3} {:>10}",
        "GeneticAlgorithm",
        report.servers_used,
        report.required_capacity_total,
        report.score,
        elapsed
    );
    rows.push(vec![
        "GeneticAlgorithm".to_string(),
        report.servers_used.to_string(),
        fmt(report.required_capacity_total, 2),
        fmt(report.score, 4),
        elapsed.to_string(),
    ]);

    write_tsv(
        "ablation_search",
        &["strategy", "servers", "c_requ", "score", "ms"],
        &rows,
    );
    println!("\nthe GA must match or beat every greedy baseline on score (never on speed)");
}
