//! Out-of-sample validation of the paper's trace-based premise: plan on
//! the first three weeks of the case-study fleet, then replay the unseen
//! fourth week through the placed hosts and audit every application's
//! delivered QoS ("we assume the resource access QoS will be similar in
//! the near future", §II).
//!
//! Run with: `cargo run --release -p ropus-bench --bin lifecycle`

use ropus::prelude::*;
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_placement::server::ServerSpec;

fn main() {
    let policy = QosPolicy::uniform(AppQos::paper_default(Some(30)));
    let apps: Vec<AppSpec> = paper_fleet()
        .into_iter()
        .map(|a| AppSpec::new(a.name, a.trace, policy))
        .collect();
    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(
            CosSpec::new(0.95, 60).expect("valid θ"),
        ))
        .options(ConsolidationOptions::thorough(0x0DE5))
        .build();

    println!("Out-of-sample lifecycle: plan on a 3-week window, replay the next week");
    let report = framework
        .run_lifecycle(&apps, 3)
        .expect("4-week fleet supports one epoch");
    println!(
        "{:>6} {:>8} {:>12} {:>22} {:>11}",
        "week", "servers", "violations", "compliant fraction", "migrations"
    );
    let mut rows = Vec::new();
    for epoch in &report.epochs {
        println!(
            "{:>6} {:>8} {:>12} {:>22.3} {:>11}",
            epoch.week, epoch.servers, epoch.violations, epoch.compliant_fraction, epoch.migrations
        );
        rows.push(vec![
            epoch.week.to_string(),
            epoch.servers.to_string(),
            epoch.violations.to_string(),
            fmt(epoch.compliant_fraction, 4),
            epoch.migrations.to_string(),
        ]);
    }
    write_tsv(
        "lifecycle_out_of_sample",
        &[
            "week",
            "servers",
            "violations",
            "compliant_fraction",
            "migrations",
        ],
        &rows,
    );
    println!(
        "\n{} of 26 applications kept their QoS on the unseen week — the paper's \
         trace-based premise {} for this fleet",
        26 - report.epochs[0].violations,
        if report.worst_compliance() >= 0.9 {
            "holds"
        } else {
            "strains"
        }
    );
}
