//! Ablation: the paper's `f(U) = U^(2Z)` utilization value vs flatter
//! alternatives (`U²`, `U`).
//!
//! The Z-scaled square term "exaggerates the advantages of higher
//! utilizations" and "demands that servers with greater numbers of CPUs
//! be higher utilized". Flatter shapes blunt the search gradient: an
//! almost-empty server contributes nearly as much as a hot one, so the GA
//! has less pressure to consolidate.
//!
//! Run with: `cargo run --release -p ropus-bench --bin ablation_score`

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_placement::engine::FitEngine;
use ropus_placement::ga::{optimize, GaOptions};
use ropus_placement::greedy::{place, servers_used, GreedyStrategy};
use ropus_placement::score::ScoreModel;
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;

fn main() {
    let fleet = paper_fleet();
    let case = CaseConfig::table1()[1];
    let workloads: Vec<Workload> = translate_fleet(&fleet, &case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();

    println!("Score-function ablation (case 2 QoS), GA with identical seeds/options");
    println!(
        "{:<12} {:>8} {:>10} {:>16}",
        "f(U)", "servers", "C_requ", "fit evaluations"
    );
    let mut rows = Vec::new();

    for (label, model) in [
        ("U^(2Z)", ScoreModel::PowerTwoZ),
        ("U^2", ScoreModel::Quadratic),
        ("U", ScoreModel::Linear),
    ] {
        let evaluator = FitEngine::new(
            &workloads,
            ServerSpec::sixteen_way(),
            case.commitments(),
            0.05,
        )
        .with_score_model(model);
        let initial =
            place(&evaluator, GreedyStrategy::FirstFitDecreasing).expect("FFD seeding succeeds");
        let pool = servers_used(&initial);
        let outcome = optimize(&evaluator, &[initial], pool, &GaOptions::thorough(0x0DE5))
            .expect("search finds a feasible assignment");
        // Distinct servers actually hosting workloads (GA may leave gaps in
        // the index space).
        let n = outcome
            .assignment
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        let c_requ: f64 = (0..pool)
            .filter_map(|srv| {
                let members: Vec<u16> = outcome
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s == srv)
                    .map(|(i, _)| i as u16)
                    .collect();
                if members.is_empty() {
                    None
                } else {
                    evaluator.server_required(&members)
                }
            })
            .sum();
        println!(
            "{label:<12} {n:>8} {c_requ:>10.1} {:>16}",
            outcome.evaluations
        );
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            fmt(c_requ, 2),
            outcome.evaluations.to_string(),
        ]);
    }
    write_tsv(
        "ablation_score",
        &["f_u", "servers", "c_requ", "fit_evaluations"],
        &rows,
    );
    println!(
        "\nflatter utilization values weaken the consolidation gradient; the paper's \
              Z-scaled square should use the fewest (or equal) servers"
    );
}
