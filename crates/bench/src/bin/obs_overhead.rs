//! Obs-overhead smoke for the SLO engine: a 10,000-app week replay
//! (2016 five-minute slots, slot-major) run twice — once with obs off,
//! once with a deterministic collector plus the per-slot counter and
//! histogram load the serve daemon generates — written as JSON under
//! `target/bench/` so CI archives the overhead trajectory.
//!
//! The acceptance budget is < 3% overhead for the obs-on run. Each side
//! is timed over several interleaved repeats and the minimum is
//! compared, so scheduler noise on a loaded runner does not trip the
//! gate. Tune with `ROPUS_OBS_OVERHEAD_BUDGET_PCT` or disable with
//! `--no-gate`.
//!
//! Run with: `cargo run --release -p ropus-bench --bin obs_overhead`

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use serde::Serialize;

use ropus_obs::{names, BurnRateRule, Clock, Obs, ObsCtx, SloContract, SloEngine, WallClock};

/// Fleet size of the overhead point.
const APPS: usize = 10_000;
/// One week of five-minute slots.
const SLOTS: usize = 2016;
/// Interleaved (off, on) timing pairs; the gate reads the min per side.
const REPEATS: usize = 5;
/// Default overhead budget, percent.
const DEFAULT_BUDGET_PCT: f64 = 3.0;
/// Histogram bounds for the per-slot degraded-fraction sample.
const SATURATION_BOUNDS: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.5];

/// The archived summary, one JSON object per CI run.
#[derive(Serialize)]
struct OverheadSummary {
    bench: &'static str,
    apps: usize,
    slots: usize,
    repeats: usize,
    obs_off_s: f64,
    obs_on_s: f64,
    overhead_pct: f64,
    alerts: usize,
    budget_pct: f64,
    gated: bool,
}

/// Registers the 10k-app contract set (paper-shaped: U_high 0.66,
/// U_degr 0.9, M_degr 3%, T_degr 3 h).
fn build_engine() -> SloEngine {
    let mut engine = SloEngine::new(BurnRateRule::default_rules());
    for i in 0..APPS {
        engine.register(SloContract::new(
            format!("app-{i:05}"),
            0.66,
            0.9,
            0.03,
            Some(36),
        ));
    }
    engine
}

/// Synthetic utilization of allocation: a healthy 0.30–0.60 spread
/// (always under `U_high`) with roughly 1% of the fleet bursting
/// contiguously (slots 600..660) hard enough to trip both burn-rate
/// rules.
fn utilization(app: usize, slot: usize) -> f64 {
    if app.is_multiple_of(97) && (600..660).contains(&slot) {
        return 0.85;
    }
    let phase = (app * 31 + slot * 7) % 101;
    0.30 + 0.003 * phase as f64
}

/// One full week replay; returns the alert count as a cross-run check.
fn run_week(obs: ObsCtx<'_>) -> usize {
    let mut engine = build_engine();
    for slot in 0..SLOTS {
        let mut degraded = 0usize;
        for app in 0..APPS {
            let u = utilization(app, slot);
            if u > 0.66 {
                degraded += 1;
            }
            engine.observe(app, slot, u, obs);
        }
        // The per-slot recording load a serve tick generates.
        obs.counter(names::SERVE_TICK_COUNT, 1);
        obs.histogram(
            names::WLM_HOST_SATURATION,
            SATURATION_BOUNDS,
            degraded as f64 / APPS as f64,
        );
    }
    engine.record_counters(obs);
    engine.alerts().len()
}

fn main() -> ExitCode {
    let no_gate = std::env::args().any(|a| a == "--no-gate");
    let budget_pct = std::env::var("ROPUS_OBS_OVERHEAD_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_BUDGET_PCT);
    let clock = WallClock::new();

    // One untimed pass warms the allocator and fault-in costs so the
    // first timed repeat is not systematically slower.
    run_week(ObsCtx::none());

    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let mut alerts_off = 0usize;
    let mut alerts_on = 0usize;
    for _ in 0..REPEATS {
        let start = clock.now_ms();
        alerts_off = run_week(ObsCtx::none());
        off_s = off_s.min((clock.now_ms() - start) / 1e3);

        let obs = Obs::deterministic();
        let start = clock.now_ms();
        alerts_on = run_week(ObsCtx::from(&obs));
        on_s = on_s.min((clock.now_ms() - start) / 1e3);
        let report = obs.report();
        assert_eq!(
            report.counter(names::SLO_SAMPLES),
            (APPS * SLOTS) as u64,
            "deterministic collector saw every sample"
        );
    }
    assert_eq!(alerts_off, alerts_on, "alert log is obs-independent");

    let overhead_pct = (on_s - off_s) / off_s * 100.0;
    println!(
        "obs_overhead: {APPS} apps × {SLOTS} slots: obs-off {off_s:.3} s, obs-on {on_s:.3} s, overhead {overhead_pct:+.2}% ({alerts_on} alerts)",
    );

    let summary = OverheadSummary {
        bench: "obs_overhead_10k",
        apps: APPS,
        slots: SLOTS,
        repeats: REPEATS,
        obs_off_s: off_s,
        obs_on_s: on_s,
        overhead_pct,
        alerts: alerts_on,
        budget_pct,
        gated: !no_gate,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serialize bench summary");
    let dir = Path::new("target/bench");
    fs::create_dir_all(dir).expect("create target/bench");
    let path = dir.join("obs_overhead_10k.json");
    fs::write(&path, json + "\n").expect("write bench summary");
    println!("obs_overhead: wrote {}", path.display());

    if !no_gate && overhead_pct > budget_pct {
        eprintln!(
            "obs_overhead: FAIL — obs-on replay cost {overhead_pct:+.2}% (> {budget_pct:.1}% budget)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
