//! CI smoke gate for the columnar fleet engine: one-shot timing of the
//! 10,000-app × 4-week plan (translate → aggregate → required capacity)
//! plus the 50-app reference pipeline, written as JSON under
//! `target/bench/` so CI archives a machine-readable trajectory.
//!
//! Unlike the criterion `fleet_10k` group this takes a single
//! measurement, so it finishes in seconds and is cheap enough to gate
//! every CI run. The time budget is generous (the acceptance number has
//! plenty of headroom) to keep the gate robust on loaded runners; tune it
//! with `ROPUS_FLEET_SMOKE_BUDGET_S` or disable with `--no-gate`.
//!
//! Run with: `cargo run --release -p ropus-bench --bin fleet_smoke`

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use serde::Serialize;

use ropus::case_study::{translate_fleet_threaded, CaseConfig};
use ropus_bench::fleet_n;
use ropus_obs::{Clock, WallClock};
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;
use ropus_placement::SlotArena;
use ropus_trace::gen::AppWorkload;

/// Default wall-clock budget for the 10k plan, seconds. The measured
/// number is well under the acceptance target of 5 s; the gate sits above
/// both so only a real regression (or a badly overloaded runner) trips it.
const DEFAULT_BUDGET_S: f64 = 15.0;

/// The archived summary, one JSON object per CI run.
#[derive(Serialize)]
struct SmokeSummary {
    bench: &'static str,
    weeks: usize,
    slot_minutes: usize,
    case: usize,
    plan_50_ms: f64,
    plan_50_cold_ms: f64,
    required_50: f64,
    plan_10000_s: f64,
    plan_10000_cold_s: f64,
    required_10000: f64,
    budget_s: f64,
    gated: bool,
}

/// Phase timings of one end-to-end plan, seconds.
struct PlanTiming {
    translate_s: f64,
    aggregate_s: f64,
    search_s: f64,
    required: f64,
}

impl PlanTiming {
    fn total_s(&self) -> f64 {
        self.translate_s + self.aggregate_s + self.search_s
    }
}

/// One timed end-to-end plan with a per-phase breakdown.
fn timed_plan(fleet: &[AppWorkload], case: &CaseConfig, arena: &mut SlotArena) -> PlanTiming {
    let commitments = case.commitments();
    let clock = WallClock::new();
    let start = clock.now_ms();
    let workloads: Vec<Workload> = translate_fleet_threaded(fleet, case, 1)
        .expect("case-study translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();
    let translated = clock.now_ms();
    let refs: Vec<&Workload> = workloads.iter().collect();
    let load = AggregateLoad::of_pooled(&refs, arena).expect("aligned fleet");
    let aggregated = clock.now_ms();
    let required = FitRequest::new(&load, &commitments)
        .with_options(FitOptions::new().with_tolerance(0.05))
        .required_capacity(64.0 * fleet.len() as f64)
        .expect("fleet fits under the generous ceiling");
    let searched = clock.now_ms();
    load.recycle(arena);
    PlanTiming {
        translate_s: (translated - start) / 1e3,
        aggregate_s: (aggregated - translated) / 1e3,
        search_s: (searched - aggregated) / 1e3,
        required,
    }
}

fn main() -> ExitCode {
    let no_gate = std::env::args().any(|a| a == "--no-gate");
    let budget_s = std::env::var("ROPUS_FLEET_SMOKE_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_BUDGET_S);
    let case = CaseConfig::table1()[2];
    let mut arena = SlotArena::new();

    // Two runs per size: the first faults every output page cold (this
    // VM's dominant cost at the GB scale), the second is the steady-state
    // number criterion would report. The gate reads the steady-state run.
    let fleet_small = fleet_n(50);
    let small_cold = timed_plan(&fleet_small, &case, &mut arena);
    let small = timed_plan(&fleet_small, &case, &mut arena);
    drop(fleet_small);
    let (small_s, small_required) = (small.total_s(), small.required);
    println!(
        "fleet_smoke: 50 apps × 4w plan: {:.1} ms steady ({:.1} cold; translate {:.1} + aggregate {:.1} + search {:.1}; required {small_required:.1} CPUs)",
        small_s * 1e3,
        small_cold.total_s() * 1e3,
        small.translate_s * 1e3,
        small.aggregate_s * 1e3,
        small.search_s * 1e3,
    );

    let fleet_large = fleet_n(10_000);
    let large_cold = timed_plan(&fleet_large, &case, &mut arena);
    let large = timed_plan(&fleet_large, &case, &mut arena);
    drop(fleet_large);
    let (large_s, large_required) = (large.total_s(), large.required);
    println!(
        "fleet_smoke: 10000 apps × 4w plan: {large_s:.2} s steady ({:.2} cold; translate {:.2} + aggregate {:.2} + search {:.2}; required {large_required:.1} CPUs)",
        large_cold.total_s(), large.translate_s, large.aggregate_s, large.search_s,
    );

    let summary = SmokeSummary {
        bench: "fleet_10k_smoke",
        weeks: 4,
        slot_minutes: 5,
        case: case.id,
        plan_50_ms: small_s * 1e3,
        plan_50_cold_ms: small_cold.total_s() * 1e3,
        required_50: small_required,
        plan_10000_s: large_s,
        plan_10000_cold_s: large_cold.total_s(),
        required_10000: large_required,
        budget_s,
        gated: !no_gate,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serialize bench summary");
    let dir = Path::new("target/bench");
    fs::create_dir_all(dir).expect("create target/bench");
    let path = dir.join("fleet_10k_smoke.json");
    fs::write(&path, json + "\n").expect("write bench summary");
    println!("fleet_smoke: wrote {}", path.display());

    if !no_gate && large_s > budget_s {
        eprintln!("fleet_smoke: FAIL — 10k plan took {large_s:.2} s (> {budget_s:.1} s budget)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
