//! §VI-C / §VII failure-mode result: consolidate the fleet under strict
//! normal-mode QoS (case 4), then check whether every single-server
//! failure can be absorbed by the surviving servers when the affected
//! applications fall back to the relaxed failure-mode QoS (case 6) — the
//! paper's "no spare server needed" conclusion.
//!
//! Run with: `cargo run --release -p ropus-bench --bin failure`

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_obs::ObsCtx;
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator};
use ropus_placement::failure::{analyze_single_failures, FailureScope};
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;

fn main() {
    let fleet = paper_fleet();
    let normal_case = CaseConfig::table1()[3]; // case 4: strict, θ = 0.95
    let failure_case = CaseConfig::table1()[5]; // case 6: M_degr 3%, θ = 0.95

    let normal: Vec<Workload> = translate_fleet(&fleet, &normal_case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();
    let failure: Vec<Workload> = translate_fleet(&fleet, &failure_case)
        .expect("translation succeeds")
        .into_iter()
        .map(|t| t.workload)
        .collect();

    let consolidator = Consolidator::new(
        ServerSpec::sixteen_way(),
        normal_case.commitments(),
        ConsolidationOptions::thorough(0x0DE5),
    );
    let normal_report = consolidator
        .consolidate(&normal, ObsCtx::none())
        .expect("normal placement succeeds");
    println!(
        "normal mode (case {} QoS): {} servers, C_requ {:.1}, C_peak {:.1}",
        normal_case.id,
        normal_report.servers_used,
        normal_report.required_capacity_total,
        normal_report.peak_allocation_total
    );

    // §VII scope: during the repair window every application runs under
    // its failure-mode QoS, which is what frees a whole server's capacity.
    let analysis = analyze_single_failures(
        &consolidator,
        &normal_report,
        &normal,
        &failure,
        FailureScope::AllApplications,
    )
    .expect("failure sweep succeeds");

    println!(
        "\nsingle-failure sweep (all apps fall back to case {} QoS during repair):",
        failure_case.id
    );
    let mut rows = Vec::new();
    for case in &analysis.cases {
        let (supported, survivors, c_requ) = match &case.placement {
            Some(p) => (
                "yes",
                p.servers_used.to_string(),
                fmt(p.required_capacity_total, 1),
            ),
            None => ("NO", "-".to_string(), "-".to_string()),
        };
        println!(
            "  server {:>2} fails: {:>2} affected apps -> supported: {supported:>3} \
             (survivors used: {survivors}, C_requ: {c_requ})",
            case.failed_server,
            case.affected.len()
        );
        rows.push(vec![
            case.failed_server.to_string(),
            case.affected.len().to_string(),
            supported.to_string(),
            survivors,
            c_requ,
        ]);
    }
    write_tsv(
        "failure_single_server_sweep",
        &[
            "failed_server",
            "affected_apps",
            "supported",
            "survivor_servers",
            "survivor_c_requ",
        ],
        &rows,
    );

    if analysis.spare_needed() {
        println!("\nverdict: a spare server IS needed");
    } else {
        println!(
            "\nverdict: no spare server needed — the {} remaining servers absorb any single \
             failure under failure-mode QoS (paper's conclusion)",
            normal_report.servers_used - 1
        );
    }
}
