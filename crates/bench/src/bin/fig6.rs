//! Figure 6: top percentiles (97th–99.9th) of normalized CPU demand for
//! the 26 case-study applications, sorted so the burstiest apps appear
//! first (leftmost), as in the paper.
//!
//! Run with: `cargo run --release -p ropus-bench --bin fig6`

use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_trace::stats::percentile_of_sorted;

const PERCENTILES: [f64; 5] = [99.9, 99.5, 99.0, 98.0, 97.0];

fn main() {
    let fleet = paper_fleet();
    println!("Figure 6: top percentiles of normalized CPU demand (100% = peak)");

    // Per app: normalized percentiles.
    let mut series: Vec<(String, Vec<f64>)> = fleet
        .iter()
        .map(|app| {
            let mut sorted: Vec<f64> = app.trace.samples().to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let peak = *sorted.last().expect("non-empty");
            let values: Vec<f64> = PERCENTILES
                .iter()
                .map(|&q| 100.0 * percentile_of_sorted(&sorted, q) / peak)
                .collect();
            (app.name.clone(), values)
        })
        .collect();

    // Paper ordering: burstiest first — ascending 97th percentile means
    // the top 3% of demand dwarfs the body.
    series.sort_by(|a, b| a.1[4].partial_cmp(&b.1[4]).expect("finite"));

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "p99.9", "p99.5", "p99", "p98", "p97"
    );
    let mut rows = Vec::new();
    for (rank, (name, values)) in series.iter().enumerate() {
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            name, values[0], values[1], values[2], values[3], values[4]
        );
        rows.push(vec![
            (rank + 1).to_string(),
            name.clone(),
            fmt(values[0], 2),
            fmt(values[1], 2),
            fmt(values[2], 2),
            fmt(values[3], 2),
            fmt(values[4], 2),
        ]);
    }
    write_tsv(
        "fig6_demand_percentiles",
        &["rank", "app", "p99_9", "p99_5", "p99", "p98", "p97"],
        &rows,
    );

    // Shape checks the paper narrates.
    let burstiest_p97 = series[0].1[4];
    let leftmost_ratio = 100.0 / burstiest_p97;
    println!(
        "\nleftmost app's peak is {leftmost_ratio:.1}x its 97th percentile \
         (paper: leftmost apps have top demands 2-10x the rest)"
    );
    let bursty_count = series.iter().filter(|(_, v)| 100.0 / v[4] >= 2.0).count();
    println!("{bursty_count} of 26 apps have peak >= 2x their 97th percentile");
}
