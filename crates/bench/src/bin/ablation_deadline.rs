//! Ablation: sensitivity of required capacity to the CoS2 deadline `s`.
//!
//! The paper fixes `s` = 60 minutes (footnote 3) without exploring it.
//! This experiment aggregates the whole translated fleet onto one large
//! resource and sweeps the deadline: a short deadline forces backlog to
//! drain almost immediately (required capacity approaches the θ-driven
//! level), while a long one lets sustained overload be repaid slowly.
//!
//! Run with: `cargo run --release -p ropus-bench --bin ablation_deadline`

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;
use ropus_qos::{CosSpec, PoolCommitments};

const DEADLINES_MIN: [u32; 6] = [5, 15, 30, 60, 120, 240];

fn main() {
    let fleet = paper_fleet();
    println!("Deadline ablation: pool-level required capacity vs CoS2 deadline s");
    println!("{:>12} {:>14} {:>14}", "s (min)", "θ=0.6", "θ=0.95");
    let mut rows = Vec::new();

    // Use the M_degr=3%, T_degr=none translation (case 3 / case 6 shape).
    for &deadline in &DEADLINES_MIN {
        let mut row = vec![deadline.to_string()];
        let mut printed = format!("{deadline:>12}");
        for theta in [0.6, 0.95] {
            let case = if theta == 0.6 {
                CaseConfig::table1()[2]
            } else {
                CaseConfig::table1()[5]
            };
            let workloads: Vec<Workload> = translate_fleet(&fleet, &case)
                .expect("translation succeeds")
                .into_iter()
                .map(|t| t.workload)
                .collect();
            let refs: Vec<&Workload> = workloads.iter().collect();
            let load = AggregateLoad::of(&refs).expect("fleet is aligned");
            let commitments =
                PoolCommitments::new(CosSpec::new(theta, deadline).expect("valid spec"));
            let limit = load.total_peak() + 1.0;
            let req = FitRequest::new(&load, &commitments)
                .with_options(FitOptions::new().with_tolerance(0.1))
                .required_capacity(limit)
                .expect("the pool-level limit always fits");
            printed.push_str(&format!(" {req:>14.1}"));
            row.push(fmt(req, 2));
        }
        println!("{printed}");
        rows.push(row);
    }
    write_tsv(
        "ablation_deadline",
        &["deadline_min", "c_requ_theta_0_6", "c_requ_theta_0_95"],
        &rows,
    );
    println!(
        "\nshorter deadlines monotonically raise required capacity. At pool scale the \
              columns coincide: the aggregate is smooth enough that the weekly θ measurement \
              is satisfied below the deadline-driven capacity, so the backlog deadline — not \
              θ — is the binding constraint for both commitments."
    );
}
