//! Ablation: two classes of service vs a single class.
//!
//! The paper (§VII): "If all demands were associated with CoS1 then ...
//! we would require at least 15 servers for case 1 and 11 servers for
//! case 3. Thus having multiple classes of service is advantageous."
//! This experiment consolidates the fleet three ways per case:
//! all demand guaranteed (CoS1-only), the paper's portfolio split, and
//! everything statistical (CoS2-only).
//!
//! Run with: `cargo run --release -p ropus-bench --bin ablation_cos`

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_obs::ObsCtx;
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator};
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;

/// Moves every unit of allocation into the chosen class.
fn reclass(workloads: &[Workload], all_cos1: bool) -> Vec<Workload> {
    workloads
        .iter()
        .map(|w| {
            let total = w
                .cos1()
                .checked_add(w.cos2())
                .expect("translation traces are aligned");
            let zero = total.scaled(0.0).expect("zero scale is valid");
            if all_cos1 {
                Workload::new(w.name(), total, zero).expect("aligned by construction")
            } else {
                Workload::new(w.name(), zero, total).expect("aligned by construction")
            }
        })
        .collect()
}

fn main() {
    let fleet = paper_fleet();
    println!("CoS ablation: servers and C_requ per demand-classing policy");
    println!(
        "{:>4} {:<18} {:>8} {:>10} {:>10}",
        "case", "classing", "servers", "C_requ", "C_peak"
    );
    let mut rows = Vec::new();

    for case in [CaseConfig::table1()[0], CaseConfig::table1()[2]] {
        let portfolio: Vec<Workload> = translate_fleet(&fleet, &case)
            .expect("translation succeeds")
            .into_iter()
            .map(|t| t.workload)
            .collect();
        let variants: [(&str, Vec<Workload>); 3] = [
            ("all-CoS1", reclass(&portfolio, true)),
            ("portfolio (paper)", portfolio.clone()),
            ("all-CoS2", reclass(&portfolio, false)),
        ];
        for (label, workloads) in variants {
            let consolidator = Consolidator::new(
                ServerSpec::sixteen_way(),
                case.commitments(),
                ConsolidationOptions::thorough(0x0DE5),
            );
            match consolidator.consolidate(&workloads, ObsCtx::none()) {
                Ok(report) => {
                    println!(
                        "{:>4} {:<18} {:>8} {:>10.1} {:>10.1}",
                        case.id,
                        label,
                        report.servers_used,
                        report.required_capacity_total,
                        report.peak_allocation_total
                    );
                    rows.push(vec![
                        case.id.to_string(),
                        label.to_string(),
                        report.servers_used.to_string(),
                        fmt(report.required_capacity_total, 2),
                        fmt(report.peak_allocation_total, 2),
                    ]);
                }
                Err(err) => {
                    println!("{:>4} {:<18} {:>8} {err}", case.id, label, "-");
                    rows.push(vec![
                        case.id.to_string(),
                        label.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
    }
    write_tsv(
        "ablation_cos",
        &["case", "classing", "servers", "c_requ", "c_peak"],
        &rows,
    );
    println!(
        "\nall-CoS1 reserves the sum of peaks per server (no overbooking), so it needs the most \
         servers; the portfolio matches all-CoS2's packing while keeping a guaranteed floor."
    );
}
