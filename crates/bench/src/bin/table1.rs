//! Table I: impact of `M_degr`, `T_degr` and `θ` on resource sharing.
//! For each of the six case-study configurations, runs the full QoS
//! translation + genetic consolidation on the 26-app fleet and reports the
//! number of 16-way servers, `C_requ` (sum of per-server required
//! capacities) and `C_peak` (sum of per-application peak allocations).
//!
//! Run with: `cargo run --release -p ropus-bench --bin table1`

use ropus::case_study::{run_case, CaseConfig};
use ropus_bench::{fmt, paper_fleet, write_tsv};
use ropus_placement::consolidate::ConsolidationOptions;

fn main() {
    let fleet = paper_fleet();
    println!("Table I: impact of M_degr, T_degr and θ on resource sharing (26 apps, 4 weeks)");
    println!(
        "{:>4} {:>7} {:>6} {:>8} {:>18} {:>12} {:>12} {:>10} {:>14}",
        "case",
        "M_degr",
        "θ",
        "T_degr",
        "16-way servers",
        "C_requ",
        "C_peak",
        "savings",
        "all-CoS1 bound"
    );

    let mut rows = Vec::new();
    for case in CaseConfig::table1() {
        let (row, _) = run_case(&fleet, &case, ConsolidationOptions::thorough(0x0DE5))
            .expect("case-study consolidation succeeds");
        let t_degr = case
            .t_degr
            .map_or("none".to_string(), |m| format!("{m} min"));
        println!(
            "{:>4} {:>6.0}% {:>6.2} {:>8} {:>18} {:>12.1} {:>12.1} {:>9.1}% {:>14}",
            case.id,
            case.m_degr * 100.0,
            case.theta,
            t_degr,
            row.servers,
            row.c_requ,
            row.c_peak,
            100.0 * row.sharing_savings,
            row.all_cos1_servers_lower_bound,
        );
        rows.push(vec![
            case.id.to_string(),
            fmt(case.m_degr * 100.0, 0),
            fmt(case.theta, 2),
            t_degr,
            row.servers.to_string(),
            fmt(row.c_requ, 2),
            fmt(row.c_peak, 2),
            fmt(100.0 * row.sharing_savings, 2),
            row.all_cos1_servers_lower_bound.to_string(),
        ]);
    }
    write_tsv(
        "table1_resource_sharing",
        &[
            "case",
            "m_degr_pct",
            "theta",
            "t_degr",
            "servers",
            "c_requ",
            "c_peak",
            "sharing_savings_pct",
            "all_cos1_lower_bound",
        ],
        &rows,
    );

    println!(
        "\npaper shape: required capacity 37-45% below ΣC_peak; M_degr=3% cases need one \
         fewer server than the strict cases; having two CoS beats the all-CoS1 bound."
    );
}
