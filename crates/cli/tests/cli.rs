//! End-to-end tests of the `ropus` binary: generate a small fleet, then
//! drive every subcommand against it through a real process.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ropus() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ropus"))
}

fn run(args: &[&str]) -> Output {
    ropus().args(args).output().expect("spawn ropus")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).to_string()
}

/// A per-test scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ropus-cli-tests").join(name);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generates a small fleet + policy template and returns their paths.
fn generated(name: &str) -> (String, String) {
    let dir = scratch(name);
    let traces = dir.join("traces.csv").to_string_lossy().to_string();
    let policy = dir.join("policy.json").to_string_lossy().to_string();
    let output = run(&[
        "generate", "--out", &traces, "--apps", "5", "--weeks", "1", "--policy", &policy,
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    (traces, policy)
}

#[test]
fn help_paths() {
    let output = run(&["help"]);
    assert!(output.status.success());
    assert!(stdout(&output).contains("consolidate"));

    let no_args = ropus().output().expect("spawn");
    assert!(!no_args.status.success());

    let unknown = run(&["frobnicate"]);
    assert!(!unknown.status.success());
    assert!(stderr(&unknown).contains("unknown command"));

    for cmd in [
        "generate",
        "translate",
        "consolidate",
        "plan",
        "forecast",
        "validate",
    ] {
        let output = run(&[cmd, "--help"]);
        assert!(output.status.success(), "{cmd} --help failed");
        assert!(stdout(&output).contains("OPTIONS"));
    }
}

#[test]
fn generate_writes_csv_and_template() {
    let (traces, policy) = generated("generate");
    let csv = std::fs::read_to_string(&traces).unwrap();
    let header = csv.lines().next().unwrap();
    assert_eq!(header.split(',').count(), 5);
    // 1 week of 5-minute samples + header.
    assert_eq!(csv.lines().count(), 2016 + 1);
    let policy_text = std::fs::read_to_string(&policy).unwrap();
    assert!(policy_text.contains("\"theta\""));
}

#[test]
fn translate_prints_per_app_table_and_json() {
    let (traces, policy) = generated("translate");
    let output = run(&["translate", "--traces", &traces, "--policy", &policy]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("app-01"));
    assert!(text.contains("C_peak"));

    let output = run(&[
        "translate",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--json",
    ]);
    assert!(output.status.success());
    let json: serde_json::Value = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(json.as_array().unwrap().len(), 5);

    // Failure-mode translation must not increase any peak allocation.
    let fail = run(&[
        "translate",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--failure-mode",
    ]);
    assert!(fail.status.success());
}

#[test]
fn consolidate_reports_packing() {
    let (traces, policy) = generated("consolidate");
    let output = run(&[
        "consolidate",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--fast",
        "--seed",
        "3",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("servers used"));
    assert!(text.contains("per-server packing"));

    let output = run(&[
        "consolidate",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--fast",
        "--json",
    ]);
    assert!(output.status.success());
    let json: serde_json::Value = serde_json::from_str(&stdout(&output)).unwrap();
    assert!(json["servers_used"].as_u64().unwrap() >= 1);
}

#[test]
fn plan_produces_verdict() {
    let (traces, policy) = generated("plan");
    let output = run(&[
        "plan",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--fast",
        "--all-apps-relax",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("spare server needed"));
    assert!(text.contains("single-failure sweep"));

    let output = run(&[
        "plan", "--traces", &traces, "--policy", &policy, "--fast", "--json",
    ]);
    assert!(output.status.success());
    let json: serde_json::Value = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(json["apps"].as_array().unwrap().len(), 5);
}

#[test]
fn forecast_projects_server_needs() {
    let (traces, policy) = generated("forecast");
    let output = run(&[
        "forecast",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--fast",
        "--growth",
        "1.3",
        "--horizon",
        "4",
        "--step",
        "2",
        "--servers",
        "1",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("weeks ahead"));
    assert!(text.contains("1-server pool"));

    // Growth estimated from history when --growth is omitted.
    let output = run(&[
        "forecast",
        "--traces",
        &traces,
        "--policy",
        &policy,
        "--fast",
        "--horizon",
        "2",
        "--step",
        "2",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("estimated weekly growth"));

    // Bad growth rejected.
    let output = run(&[
        "forecast", "--traces", &traces, "--policy", &policy, "--fast", "--growth", "-2",
    ]);
    assert!(!output.status.success());
}

#[test]
fn validate_audits_delivered_qos() {
    let (traces, policy) = generated("validate");
    let output = run(&[
        "validate", "--traces", &traces, "--policy", &policy, "--fast",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("compliant"));
    assert!(text.contains("per-server contention"));
    assert!(text.contains("verdict"));
}

#[test]
fn missing_and_malformed_inputs_fail_cleanly() {
    let (traces, _) = generated("errors");
    let output = run(&["consolidate", "--traces", &traces]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--policy"));

    let output = run(&[
        "translate",
        "--traces",
        "/nonexistent.csv",
        "--policy",
        "/none.json",
    ]);
    assert!(!output.status.success());

    // A policy with inverted band must be rejected at load.
    let dir = scratch("errors");
    let bad = dir.join("bad.json");
    std::fs::write(
        &bad,
        r#"{"commitments": {"theta": 0.9, "deadline_minutes": 60},
            "normal": {"band": {"low": 0.9, "high": 0.5}, "degradation": null}}"#,
    )
    .unwrap();
    let output = run(&[
        "translate",
        "--traces",
        &traces,
        "--policy",
        &bad.to_string_lossy(),
    ]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("invalid policy"));
}
