//! `ropus` — the R-Opus capacity-management command line.
//!
//! Subcommands:
//!
//! * `generate`    — synthesize an enterprise demand-trace fleet as CSV;
//! * `translate`   — map each application's demand onto the two classes of
//!   service and report the translation intermediates;
//! * `consolidate` — run the workload placement service and report servers
//!   used, `C_requ`, `C_peak`, and the per-server packing;
//! * `plan`        — the full pipeline: translate both QoS modes,
//!   consolidate, sweep single failures, and decide on a spare server;
//! * `chaos`       — deterministic fault injection: replay demand over a
//!   failure/repair timeline and measure delivered performability;
//! * `serve`       — the online planner daemon: admit/depart demand
//!   incrementally over line-delimited JSON on stdin;
//! * `watch`       — render a serve subscribe telemetry stream as
//!   human-readable one-line entries.
//!
//! Run `ropus help` (or any subcommand with `--help`) for usage.

mod args;
mod commands;
mod obs;
mod policy;

use std::process::ExitCode;

const USAGE: &str = "\
ropus — capacity management for shared resource pools (R-Opus, DSN 2006)

USAGE:
    ropus <COMMAND> [OPTIONS]

COMMANDS:
    generate     synthesize a demand-trace fleet as CSV
    translate    translate demands onto the two classes of service
    consolidate  pack workloads onto as few servers as possible
    plan         full pipeline: translate, consolidate, failure sweep
    forecast     project pool needs forward under demand growth
    validate     audit the delivered QoS of a consolidated placement
    chaos        replay demand over a failure/repair timeline
    serve        online planner daemon: JSON commands on stdin
    watch        render a serve subscribe telemetry stream
    obs-report   pretty-print an observability snapshot (--obs json:PATH)
    help         show this message

Run `ropus <COMMAND> --help` for command options. The plan, consolidate,
validate, chaos, and serve commands accept
--obs <off|summary|json:PATH|det|det:PATH> to collect pipeline spans,
events, and metrics while they run; the det modes make every snapshot
(including serve's subscribe stream) byte-identical across runs.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => commands::generate::run(rest),
        "translate" => commands::translate::run(rest),
        "consolidate" => commands::consolidate::run(rest),
        "plan" => commands::plan::run(rest),
        "forecast" => commands::forecast::run(rest),
        "validate" => commands::validate::run(rest),
        "chaos" => commands::chaos::run(rest),
        "serve" => commands::serve::run(rest),
        "watch" => commands::watch::run(rest),
        "obs-report" => commands::obs_report::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; run `ropus help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
