//! `ropus chaos` — deterministic fault injection: replay the fleet's
//! demand over a failure/repair timeline and measure the performability
//! each application actually experiences (degraded-mode compliance,
//! migrations, shed demand, time-to-recover).

use ropus::prelude::*;

use crate::args::Args;
use crate::commands::load_traces;
use crate::obs::CliObs;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus chaos — replay demand over a failure/repair timeline

Consolidates the fleet in normal mode, then replays the demand traces
while injecting server failures. During an outage the affected (or all)
applications fall back to failure-mode QoS, displaced workloads are
re-placed onto the survivors, and demand the survivors cannot serve is
carried over within the CoS2 deadline or shed. The replay is
deterministic: the same traces, policy, seeds, and schedule produce a
byte-identical report at any --threads setting.

OPTIONS:
    --traces <FILE>     demand-trace CSV (required)
    --policy <FILE>     policy JSON (required)
    --fail <EVENTS>     scripted outages as SERVER@START+DURATION
                        (slots), comma-separated, e.g. 0@1008+36,1@600+12
    --mtbf-hours <H>    draw a stochastic schedule: mean time between
                        failures per server, in hours
    --mttr-hours <H>    mean time to repair, in hours (with --mtbf-hours)
    --chaos-seed <N>    seed of the stochastic schedule (default 0)
    --scope <S>         which apps relax to failure-mode QoS during an
                        outage: 'affected' (default) or 'all'
    --shed              drop unserved demand immediately instead of
                        carrying it over within the CoS2 deadline
    --migrate           drive re-placements through the migration state
                        machine (drain, transfer, health check, storm
                        caps) instead of teleporting at segment
                        boundaries; attaches a migration report
    --drain-slots <N>        slots the source drains before transfer
                             (default 2; implies --migrate)
    --transfer-slots <N>     slots the transfer occupies (default 1)
    --health-slots <N>       consecutive healthy slots required on the
                             destination before commit (default 2)
    --drain-deadline <N>     slots a contended drain may stall before
                             rolling back (default: unbounded)
    --max-inflight <N>       fleet-wide cap on concurrent moves
                             (default: unlimited)
    --max-inflight-server <N> per-server cap on concurrent moves
                             (default: unlimited)
    --migration-retries <N>  retries after rollback before a move is
                             abandoned (default 2)
    --migration-backoff <N>  base backoff slots between retries,
                             doubling each attempt (default 2)
    --seed <N>          placement search seed (default 0)
    --threads <N>       engine worker threads (default 1)
    --fast              use fast search options (tests/previews)
    --json              emit the chaos report as JSON
    --obs <MODE>        observability: 'off' (default), 'summary' (print
                        a span/metric digest to stderr), or 'json:PATH'
                        (write the full ObsReport JSON to PATH)
    --help              show this message";

/// Parses `SERVER@START+DURATION` triples, comma-separated.
fn parse_events(spec: &str) -> Result<Vec<FailureEvent>, String> {
    spec.split(',')
        .map(|item| {
            let bad = || format!("--fail entry {item:?} is not SERVER@START+DURATION");
            let (server, rest) = item.split_once('@').ok_or_else(bad)?;
            let (start, duration) = rest.split_once('+').ok_or_else(bad)?;
            Ok(FailureEvent {
                server: server.trim().parse().map_err(|_| bad())?,
                start: start.trim().parse().map_err(|_| bad())?,
                duration: duration.trim().parse().map_err(|_| bad())?,
            })
        })
        .collect()
}

/// Assembles the migration lifecycle model from `--migrate` and its
/// tuning flags; any tuning flag implies `--migrate`.
fn parse_migration(args: &Args) -> Result<Option<MigrationConfig>, String> {
    let tuned = [
        "drain-slots",
        "transfer-slots",
        "health-slots",
        "drain-deadline",
        "max-inflight",
        "max-inflight-server",
        "migration-retries",
        "migration-backoff",
    ]
    .iter()
    .any(|flag| args.get(flag).is_some());
    if !args.has_switch("migrate") && !tuned {
        return Ok(None);
    }
    let defaults = MigrationConfig::paced();
    let mut config = MigrationConfig {
        drain_slots: args.get_parsed("drain-slots", defaults.drain_slots)?,
        transfer_slots: args.get_parsed("transfer-slots", defaults.transfer_slots)?,
        health_slots: args.get_parsed("health-slots", defaults.health_slots)?,
        max_retries: args.get_parsed("migration-retries", defaults.max_retries)?,
        backoff_slots: args.get_parsed("migration-backoff", defaults.backoff_slots)?,
        ..defaults
    };
    if args.get("drain-deadline").is_some() {
        config = config.with_drain_deadline(args.get_parsed("drain-deadline", 0usize)?);
    }
    if args.get("max-inflight").is_some() {
        config = config.with_max_in_flight(args.get_parsed("max-inflight", 0usize)?);
    }
    if args.get("max-inflight-server").is_some() {
        config =
            config.with_max_in_flight_per_server(args.get_parsed("max-inflight-server", 0usize)?);
    }
    Ok(Some(config))
}

/// Converts a duration in hours to calendar slots (at least one).
fn hours_to_slots(calendar: Calendar, hours: f64) -> usize {
    calendar
        .slots_in_minutes((hours * 60.0).round() as u32)
        .max(1)
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or replay error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["fast", "json", "shed", "migrate"])?;
    let cli_obs = CliObs::from_args(&args)?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let seed = args.get_parsed("seed", 0u64)?;
    let threads = args.get_parsed("threads", 1usize)?;
    let options = if args.has_switch("fast") {
        ConsolidationOptions::fast(seed)
    } else {
        ConsolidationOptions::thorough(seed)
    }
    .with_threads(threads);
    let scope = match args.get("scope").unwrap_or("affected") {
        "all" => FailureScope::AllApplications,
        "affected" => FailureScope::AffectedOnly,
        other => {
            return Err(format!(
                "--scope must be 'all' or 'affected', got {other:?}"
            ))
        }
    };
    let degradation = if args.has_switch("shed") {
        DegradationPolicy::shed_immediately()
    } else {
        DegradationPolicy::default()
    };
    let migration = parse_migration(&args)?;

    let framework = Framework::builder()
        .server(policy.server_spec())
        .commitments(policy.pool_commitments())
        .options(options)
        .failure_scope(scope)
        .build();
    let apps: Vec<AppSpec> = traces
        .into_iter()
        .map(|(name, trace)| AppSpec::new(name, trace, policy.qos_policy()))
        .collect();
    let placement = framework
        .plan_normal_only(PlanRequest::of(&apps).with_obs(cli_obs.collector()))
        .map_err(|e| format!("planning failed: {e}"))?;

    // Assemble the schedule: scripted events, a stochastic draw remapped
    // onto the servers the placement actually uses, or both.
    let horizon = apps
        .first()
        .map(|a| a.demand().len())
        .ok_or("trace file contains no workloads")?;
    let mut events = match args.get("fail") {
        Some(spec) => parse_events(spec)?,
        None => Vec::new(),
    };
    if let Some(mtbf_hours) = args.get("mtbf-hours") {
        let mtbf_hours: f64 = mtbf_hours
            .parse()
            .map_err(|_| format!("flag --mtbf-hours has invalid value {mtbf_hours:?}"))?;
        let mttr_hours: f64 = args
            .require("mttr-hours")?
            .parse()
            .map_err(|_| "flag --mttr-hours has an invalid value".to_string())?;
        let profile = StochasticProfile {
            seed: args.get_parsed("chaos-seed", 0u64)?,
            mtbf_slots: hours_to_slots(policy.calendar(), mtbf_hours),
            mttr_slots: hours_to_slots(policy.calendar(), mttr_hours),
        };
        let draw = FailureSchedule::stochastic(&profile, placement.servers.len(), horizon)
            .map_err(|e| format!("invalid stochastic profile: {e}"))?;
        events.extend(draw.events().iter().map(|e| FailureEvent {
            server: placement.servers[e.server].server,
            ..*e
        }));
    }
    let schedule = if events.is_empty() {
        FailureSchedule::none()
    } else {
        FailureSchedule::scripted(events).map_err(|e| format!("invalid schedule: {e}"))?
    };

    let mut report = framework
        .chaos_replay_on_with(
            PlanRequest::of(&apps).with_obs(cli_obs.collector()),
            &placement,
            &schedule,
            degradation,
            migration,
        )
        .map_err(|e| format!("replay failed: {e}"))?;

    if args.has_switch("json") {
        report.obs = cli_obs.snapshot();
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        println!("{json}");
        return cli_obs.finish();
    }

    println!(
        "placement:   {} apps on {} servers",
        report.apps.len(),
        placement.servers_used
    );
    println!(
        "schedule:    {} outage(s), {} of {} slots degraded, {} contended",
        schedule.events().len(),
        report.degraded_slots,
        report.slots,
        report.contended_slots
    );
    for w in &report.windows {
        println!(
            "  [{:>5}, {:>5}) servers {:?} down: {} displaced, {} migrations, {:.1} CPU·slots shed, recovery {}",
            w.start,
            w.end,
            w.failed,
            w.displaced,
            w.migrations,
            w.shed,
            match w.recovery_slots {
                Some(r) => format!("{r} slot(s)"),
                None => "not reached".to_string(),
            }
        );
    }
    println!(
        "\n{:<12} {:>10} {:>10} {:>8} {:>8} {:>6} {:>9}",
        "app", "demand", "served", "late", "shed", "migr", "compliant"
    );
    for a in &report.apps {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>8.1} {:>8.1} {:>6} {:>9}",
            a.name,
            a.demand_total,
            a.served_total(),
            a.served_late,
            a.shed,
            a.migrations,
            if a.is_compliant() { "yes" } else { "NO" },
        );
    }
    println!(
        "\nfleet: {:.2}% of demand shed, {} migrations",
        100.0 * report.shed_fraction(),
        report.migrations_total
    );
    if let Some(m) = &report.migration {
        println!(
            "migration:   {} planned, {} committed, {} rolled back, {} failed, {} superseded",
            m.planned, m.committed, m.rolled_back, m.failed, m.superseded
        );
        println!(
            "             peak {} in flight, {} move-slots deferred by storm caps, {} slots double-booked",
            m.peak_in_flight, m.deferred_slots, m.double_booked_slots
        );
        if let (Some(first), Some(last)) = (m.first_commit_slot, m.last_commit_slot) {
            println!("             first commit slot {first}, last commit slot {last}");
        }
    }
    cli_obs.finish()?;
    if report.all_compliant() {
        println!("verdict: every application stayed within its QoS contract");
        Ok(())
    } else {
        let violators: Vec<&str> = report
            .apps
            .iter()
            .filter(|a| !a.is_compliant())
            .map(|a| a.name.as_str())
            .collect();
        Err(format!("QoS violated under failures for: {violators:?}"))
    }
}
