//! `ropus obs-report` — pretty-print an `ObsReport` JSON file produced
//! with `--obs json:PATH`.

use ropus::prelude::ObsReport;

use crate::args::Args;
use crate::obs::write_summary;

const HELP: &str = "\
ropus obs-report — pretty-print an observability snapshot

Reads an ObsReport JSON file (written by any subcommand's
--obs json:PATH or det:PATH flag) and renders the span/event/metric
digest that --obs summary prints — histograms sorted by registry name
with p50/p95/p99 bucket-bound estimates — optionally followed by the
hierarchical span tree and every recorded event.

OPTIONS:
    --file <PATH>      ObsReport JSON file (required)
    --spans            render the span tree: per-path call counts with
                       inclusive and exclusive (self) time, flame-style
    --events           also list every event with its attributes
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or parse error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["events", "spans"])?;
    let path = args.require("file")?;
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read obs report {path}: {e}"))?;
    let report: ObsReport =
        serde_json::from_str(&raw).map_err(|e| format!("cannot parse obs report {path}: {e}"))?;

    let mut out = Vec::new();
    write_summary(&report, &mut out).map_err(|e| format!("cannot render summary: {e}"))?;
    print!("{}", String::from_utf8_lossy(&out));

    if args.has_switch("spans") && !report.spans.is_empty() {
        println!("  span tree:");
        for node in report.span_rollup() {
            let label = node.path.rsplit(" / ").next().unwrap_or("");
            let indented = format!("{}{label}", "  ".repeat(node.depth));
            println!(
                "    {indented:<40} {:>6} x  incl {:>10.2} ms  self {:>10.2} ms",
                node.count, node.inclusive_ms, node.exclusive_ms
            );
        }
    }

    if args.has_switch("events") && !report.events.is_empty() {
        println!("  event log:");
        for e in &report.events {
            let attrs: Vec<String> = e
                .attrs
                .iter()
                .map(|a| format!("{}={}", a.key, a.value))
                .collect();
            println!("    #{:<6} {:<36} {}", e.seq, e.name, attrs.join(" "));
        }
    }
    Ok(())
}
