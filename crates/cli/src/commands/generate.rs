//! `ropus generate` — synthesize a demand-trace fleet as CSV, plus an
//! optional policy-file template to go with it.

use ropus_trace::gen::{case_study_fleet, FleetConfig};
use ropus_trace::io::write_csv;

use crate::args::Args;
use crate::policy::TEMPLATE;

const HELP: &str = "\
ropus generate — synthesize an enterprise demand-trace fleet as CSV

OPTIONS:
    --out <FILE>       output CSV path (required)
    --apps <N>         number of applications (default 26)
    --weeks <N>        whole weeks of history (default 4)
    --seed <N>         fleet seed (default: the case-study seed)
    --policy <FILE>    also write a ready-to-edit policy JSON template
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage or I/O error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &[])?;
    let out = args.require("out")?;
    let config = FleetConfig {
        apps: args.get_parsed("apps", 26usize)?,
        weeks: args.get_parsed("weeks", 4usize)?,
        seed: args.get_parsed("seed", FleetConfig::paper().seed)?,
        ..FleetConfig::paper()
    };
    if config.apps == 0 || config.weeks == 0 {
        return Err("--apps and --weeks must be at least 1".to_string());
    }

    let fleet = case_study_fleet(&config);
    let named: Vec<(String, &ropus_trace::Trace)> = fleet
        .iter()
        .map(|app| (app.name.clone(), &app.trace))
        .collect();
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_csv(std::io::BufWriter::new(file), &named)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} applications x {} weeks ({} samples each) to {out}",
        fleet.len(),
        config.weeks,
        fleet[0].trace.len()
    );

    if let Some(policy_path) = args.get("policy") {
        std::fs::write(policy_path, TEMPLATE)
            .map_err(|e| format!("cannot write {policy_path}: {e}"))?;
        println!("wrote policy template to {policy_path}");
    }
    Ok(())
}
