//! `ropus validate` — plan capacity, then replay the placement through
//! the workload-manager host scheduler and audit the QoS each application
//! actually receives (the paper's "service levels are evaluated" step).

use ropus::prelude::*;

use crate::args::Args;
use crate::commands::load_traces;
use crate::obs::CliObs;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus validate — audit the delivered QoS of a consolidated placement

Plans capacity for the fleet, then replays the raw demand traces through
the two-priority host scheduler of each placed server and audits every
application's utilization of allocation against its requirement.

OPTIONS:
    --traces <FILE>    demand-trace CSV (required)
    --policy <FILE>    policy JSON (required)
    --seed <N>         search seed (default 0)
    --fast             use fast search options
    --obs <MODE>       observability: 'off' (default), 'summary' (print
                       a span/metric digest to stderr), or 'json:PATH'
                       (write the full ObsReport JSON to PATH)
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or pipeline error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["fast"])?;
    let cli_obs = CliObs::from_args(&args)?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let seed = args.get_parsed("seed", 0u64)?;
    let options = if args.has_switch("fast") {
        ConsolidationOptions::fast(seed)
    } else {
        ConsolidationOptions::thorough(seed)
    };

    let framework = Framework::builder()
        .server(policy.server_spec())
        .commitments(policy.pool_commitments())
        .options(options)
        .build();
    let apps: Vec<AppSpec> = traces
        .into_iter()
        .map(|(name, trace)| AppSpec::new(name, trace, policy.qos_policy()))
        .collect();
    let plan = framework
        .plan(PlanRequest::of(&apps).with_obs(cli_obs.collector()))
        .map_err(|e| format!("planning failed: {e}"))?;
    let runtime = framework
        .validate_runtime(PlanRequest::of(&apps).with_obs(cli_obs.collector()), &plan)
        .map_err(|e| format!("replay failed: {e}"))?;

    println!("placement: {} servers", plan.normal_servers());
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "app", "server", "acceptable", "degraded", "max U", "compliant"
    );
    for outcome in &runtime.apps {
        println!(
            "{:<12} {:>7} {:>11.1}% {:>11.2}% {:>12.3} {:>10}",
            outcome.name,
            outcome.server,
            100.0 * outcome.audit.acceptable_fraction,
            100.0 * outcome.audit.degraded_fraction,
            outcome.audit.max_utilization,
            if outcome.audit.is_compliant() {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!("\nper-server contention:");
    for s in &runtime.servers {
        println!(
            "  server {:>2}: {:>5} contended slots, peak granted {:>6.1}",
            s.server, s.contended_slots, s.peak_granted
        );
    }
    cli_obs.finish()?;
    if runtime.all_compliant() {
        println!("\nverdict: delivered QoS meets every application's requirement");
        Ok(())
    } else {
        Err(format!(
            "delivered QoS violates requirements for: {:?}",
            runtime.violators()
        ))
    }
}
