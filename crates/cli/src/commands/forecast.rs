//! `ropus forecast` — long-term capacity planning: estimate per-app demand
//! growth from the trace history and project pool needs forward.

use ropus::planning::estimate_weekly_growth;
use ropus::prelude::*;

use crate::args::Args;
use crate::commands::load_traces;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus forecast — project pool needs forward under demand growth

OPTIONS:
    --traces <FILE>    demand-trace CSV (required; >= 2 whole weeks to
                       estimate growth from history)
    --policy <FILE>    policy JSON (required)
    --growth <F>       weekly growth factor (default: estimated from the
                       traces, e.g. 1.05 = +5%/week)
    --horizon <N>      forecast horizon in weeks (default 24)
    --step <N>         evaluation step in weeks (default 4)
    --servers <N>      report when a pool of N servers is exhausted
    --seed <N>         search seed (default 0)
    --fast             use fast search options
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or pipeline error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["fast"])?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let horizon = args.get_parsed("horizon", 24usize)?;
    let step = args.get_parsed("step", 4usize)?;
    if step == 0 {
        return Err("--step must be at least 1".to_string());
    }
    let seed = args.get_parsed("seed", 0u64)?;
    let options = if args.has_switch("fast") {
        ConsolidationOptions::fast(seed)
    } else {
        ConsolidationOptions::thorough(seed)
    };

    let growth = match args.get("growth") {
        Some(raw) => {
            let g: f64 = raw
                .parse()
                .map_err(|_| format!("invalid --growth value {raw:?}"))?;
            if !(g.is_finite() && g > 0.0) {
                return Err("--growth must be a positive number".to_string());
            }
            g
        }
        None => {
            let growths: Vec<f64> = traces
                .iter()
                .map(|(_, t)| estimate_weekly_growth(t))
                .collect();
            let mean = growths.iter().sum::<f64>() / growths.len() as f64;
            println!(
                "estimated weekly growth from history: {:.2}%",
                (mean - 1.0) * 100.0
            );
            mean
        }
    };

    let framework = Framework::builder()
        .server(policy.server_spec())
        .commitments(policy.pool_commitments())
        .options(options)
        .build();
    let apps: Vec<AppSpec> = traces
        .into_iter()
        .map(|(name, trace)| AppSpec::new(name, trace, policy.qos_policy()))
        .collect();
    let forecast = framework
        .forecast(&apps, growth, horizon, step)
        .map_err(|e| format!("forecast failed: {e}"))?;

    println!(
        "{:>12} {:>8} {:>12} {:>10}",
        "weeks ahead", "scale", "servers", "C_requ"
    );
    for entry in &forecast.entries {
        match (entry.servers, entry.required_capacity) {
            (Some(s), Some(c)) => {
                println!(
                    "{:>12} {:>8.2} {:>12} {:>10.1}",
                    entry.weeks_ahead, entry.scale, s, c
                )
            }
            _ => println!(
                "{:>12} {:>8.2} {:>12} {:>10}",
                entry.weeks_ahead, entry.scale, "UNPLACEABLE", "-"
            ),
        }
    }
    if let Some(available) = args.get("servers") {
        let available: usize = available
            .parse()
            .map_err(|_| "invalid --servers value".to_string())?;
        match forecast.exhaustion_week(available) {
            Some(week) => println!(
                "\na {available}-server pool is exhausted ~{week} weeks out — plan procurement"
            ),
            None => println!("\na {available}-server pool lasts the whole horizon"),
        }
    }
    Ok(())
}
