//! Subcommand implementations.

pub mod chaos;
pub mod consolidate;
pub mod forecast;
pub mod generate;
pub mod obs_report;
pub mod plan;
pub mod serve;
pub mod translate;
pub mod validate;
pub mod watch;

use ropus::prelude::Obs;
use ropus_obs::ObsCtx;
use ropus_placement::workload::Workload as PlacementWorkload;
use ropus_qos::translation::translate;
use ropus_qos::AppQos;
use ropus_trace::{io::read_csv, Calendar, Trace};

use crate::policy::PolicyFile;

/// Loads named demand traces from a CSV file on the policy's calendar.
pub(crate) fn load_traces(path: &str, calendar: Calendar) -> Result<Vec<(String, Trace)>, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open trace file {path}: {e}"))?;
    let traces =
        read_csv(file, calendar).map_err(|e| format!("cannot parse trace file {path}: {e}"))?;
    if traces.is_empty() {
        return Err(format!("trace file {path} contains no workloads"));
    }
    Ok(traces)
}

/// Translates every trace under one QoS requirement, producing
/// placement-ready workloads plus reports.
pub(crate) fn translate_all(
    traces: &[(String, Trace)],
    qos: &AppQos,
    policy: &PolicyFile,
    obs: &Obs,
) -> Result<
    Vec<(
        String,
        PlacementWorkload,
        ropus_qos::translation::TranslationReport,
    )>,
    String,
> {
    traces
        .iter()
        .map(|(name, trace)| {
            let t = translate(trace, qos, &policy.commitments, ObsCtx::from(obs))
                .map_err(|e| format!("translating {name}: {e}"))?;
            let report = t.report;
            Ok((
                name.clone(),
                PlacementWorkload::from_translation(name.clone(), t),
                report,
            ))
        })
        .collect()
}
