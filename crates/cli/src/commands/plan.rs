//! `ropus plan` — the full pipeline: two-mode translation, normal-mode
//! consolidation, single-failure sweep, spare-server verdict.

use ropus::prelude::*;

use crate::args::Args;
use crate::commands::load_traces;
use crate::obs::CliObs;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus plan — full capacity plan: translate, consolidate, failure sweep

OPTIONS:
    --traces <FILE>    demand-trace CSV (required)
    --policy <FILE>    policy JSON (required)
    --seed <N>         search seed (default 0)
    --threads <N>      engine worker threads (default 1; results are
                       identical regardless of thread count)
    --fast             use fast search options (tests/previews)
    --all-apps-relax   every app falls back to failure-mode QoS after a
                       failure (the paper's §VII scope); default relaxes
                       only the affected apps (§VI-C)
    --json             emit the capacity plan as JSON
    --obs <MODE>       observability: 'off' (default), 'summary' (print
                       a span/metric digest to stderr), or 'json:PATH'
                       (write the full ObsReport JSON to PATH)
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or pipeline error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["fast", "json", "all-apps-relax"])?;
    let cli_obs = CliObs::from_args(&args)?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let seed = args.get_parsed("seed", 0u64)?;
    let threads = args.get_parsed("threads", 1usize)?;
    let options = if args.has_switch("fast") {
        ConsolidationOptions::fast(seed)
    } else {
        ConsolidationOptions::thorough(seed)
    }
    .with_threads(threads);
    let scope = if args.has_switch("all-apps-relax") {
        FailureScope::AllApplications
    } else {
        FailureScope::AffectedOnly
    };

    let framework = Framework::builder()
        .server(policy.server_spec())
        .commitments(policy.pool_commitments())
        .options(options)
        .failure_scope(scope)
        .build();
    let apps: Vec<AppSpec> = traces
        .into_iter()
        .map(|(name, trace)| AppSpec::new(name, trace, policy.qos_policy()))
        .collect();
    let mut plan = framework
        .plan(PlanRequest::of(&apps).with_obs(cli_obs.collector()))
        .map_err(|e| format!("planning failed: {e}"))?;

    if args.has_switch("json") {
        plan.normal_placement.obs = cli_obs.snapshot();
        let json = serde_json::to_string_pretty(&plan)
            .map_err(|e| format!("cannot serialize plan: {e}"))?;
        println!("{json}");
        return cli_obs.finish();
    }

    println!("applications:          {}", plan.apps.len());
    println!("normal-mode servers:   {}", plan.normal_servers());
    println!(
        "C_requ:                {:.1} CPUs",
        plan.normal_placement.required_capacity_total
    );
    println!(
        "C_peak:                {:.1} CPUs",
        plan.normal_placement.peak_allocation_total
    );
    println!(
        "sharing savings:       {:.1}%",
        100.0 * plan.normal_placement.sharing_savings()
    );
    let stats = &plan.normal_placement.stats;
    println!(
        "engine:                {} evaluations ({} cached, {:.1}% hit rate) on {} thread(s)",
        stats.evaluations,
        stats.cache_hits,
        100.0 * stats.hit_rate(),
        stats.threads
    );
    println!(
        "search:                {} generations in {:.0} ms ({:.2} ms/generation)",
        stats.generations, stats.total_wall_ms, stats.mean_generation_wall_ms
    );
    println!("\nsingle-failure sweep:");
    for case in &plan.failure_analysis.cases {
        match &case.placement {
            Some(p) => println!(
                "  server {:>2} fails -> re-placed on {} survivors (C_requ {:.1})",
                case.failed_server, p.servers_used, p.required_capacity_total
            ),
            None => println!(
                "  server {:>2} fails -> CANNOT be re-placed on the survivors",
                case.failed_server
            ),
        }
    }
    println!("\nspare server needed:   {}", plan.spare_needed());
    println!("servers to provision:  {}", plan.servers_to_provision());
    cli_obs.finish()
}
