//! `ropus consolidate` — the workload placement service from the command
//! line: translate under the normal-mode QoS, pack onto servers, report.

use ropus_obs::ObsCtx;
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator};

use crate::args::Args;
use crate::commands::{load_traces, translate_all};
use crate::obs::CliObs;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus consolidate — pack workloads onto as few servers as possible

OPTIONS:
    --traces <FILE>    demand-trace CSV (required)
    --policy <FILE>    policy JSON (required)
    --seed <N>         search seed (default 0)
    --threads <N>      engine worker threads (default 1; results are
                       identical regardless of thread count)
    --fast             use fast search options (tests/previews)
    --json             emit the placement report as JSON
    --obs <MODE>       observability: 'off' (default), 'summary' (print
                       a span/metric digest to stderr), or 'json:PATH'
                       (write the full ObsReport JSON to PATH)
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, translation, or placement error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["fast", "json"])?;
    let cli_obs = CliObs::from_args(&args)?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let seed = args.get_parsed("seed", 0u64)?;
    let threads = args.get_parsed("threads", 1usize)?;
    let options = if args.has_switch("fast") {
        ConsolidationOptions::fast(seed)
    } else {
        ConsolidationOptions::thorough(seed)
    }
    .with_threads(threads);

    let translated = translate_all(
        &traces,
        &policy.qos_policy().normal,
        &policy,
        cli_obs.collector(),
    )?;
    let workloads: Vec<_> = translated.iter().map(|(_, w, _)| w.clone()).collect();
    let consolidator = Consolidator::new(policy.server_spec(), policy.pool_commitments(), options);
    let mut report = consolidator
        .consolidate(&workloads, ObsCtx::from(cli_obs.collector()))
        .map_err(|e| format!("consolidation failed: {e}"))?;

    if args.has_switch("json") {
        report.obs = cli_obs.snapshot();
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        println!("{json}");
        return cli_obs.finish();
    }

    println!("servers used:     {}", report.servers_used);
    println!(
        "C_requ:           {:.1} CPUs",
        report.required_capacity_total
    );
    println!("C_peak:           {:.1} CPUs", report.peak_allocation_total);
    println!("sharing savings:  {:.1}%", 100.0 * report.sharing_savings());
    let stats = &report.stats;
    println!(
        "engine:           {} evaluations ({} cached, {:.1}% hit rate) on {} thread(s)",
        stats.evaluations,
        stats.cache_hits,
        100.0 * stats.hit_rate(),
        stats.threads
    );
    println!(
        "search:           {} generations in {:.0} ms ({:.2} ms/generation)",
        stats.generations, stats.total_wall_ms, stats.mean_generation_wall_ms
    );
    println!("\nper-server packing:");
    for sp in &report.servers {
        let names: Vec<&str> = sp.workloads.iter().map(|&i| traces[i].0.as_str()).collect();
        println!(
            "  server {:>2}: required {:>6.1} CPUs (U = {:.2})  [{}]",
            sp.server,
            sp.required_capacity,
            sp.utilization,
            names.join(", ")
        );
    }
    cli_obs.finish()
}
