//! `ropus serve` — the online planner daemon: line-delimited JSON
//! commands on stdin, one JSON response per line on stdout.

use std::io::{BufReader, BufWriter};

use ropus::daemon::admission::policy_by_name;
use ropus::daemon::{Daemon, DaemonConfig};
use ropus_obs::ObsCtx;

use crate::args::Args;
use crate::obs::CliObs;
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus serve — long-running planner: admit/depart demand incrementally

Reads one JSON command per stdin line and answers one JSON response per
stdout line. Commands:

    {\"cmd\":\"admit\",\"name\":NAME,\"level\":CPUS}      constant demand
    {\"cmd\":\"admit\",\"name\":NAME,\"samples\":[..]}    explicit demand
    {\"cmd\":\"depart\",\"name\":NAME}                  remove application
    {\"cmd\":\"migrate\",\"name\":NAME,\"server\":S}      move application
    {\"cmd\":\"tick\"}  /  {\"cmd\":\"tick\",\"slots\":N}    advance time
    {\"cmd\":\"snapshot\"}                             live plan + queue
    {\"cmd\":\"subscribe\"}                            stream telemetry
    {\"cmd\":\"shutdown\"}                             stats, then exit

Admission probes every open server under the policy's CoS commitments
and the admission policy accepts (naming a server), queues the request
until a deadline, or rejects it. Failed queue retries back off
exponentially. Migrations commit instantly by default; under
--paced-migrations they drain, transfer, and health-check across ticks
through the migration state machine.

After a subscribe command, every response line is followed by the
stream lines it produced: lifecycle events, SLO burn-rate alerts from
the per-app attainment engine each tick feeds, and (when --obs enables
a collector) per-tick metric snapshot deltas. Pipe the session through
`ropus watch` to render the stream; use --obs det for a stream that is
byte-identical across runs and --threads settings.

OPTIONS:
    --policy <FILE>       policy JSON (required)
    --admission <NAME>    admission policy: 'best-fit' (default) or
                          'first-fit'
    --weeks <N>           horizon for level-style demands (default 1)
    --threads <N>         refresh worker threads (default 1; results are
                          identical regardless of thread count)
    --max-servers <N>     pool size cap (default unbounded)
    --queue-deadline <N>  ticks a queued admission survives (default 12;
                          0 rejects instead of queueing)
    --retry-backoff <N>   base ticks between queue retries, doubling
                          after each failure (default 1)
    --retry-attempts <N>  failed retries before a queued admission is
                          dropped (default 32)
    --paced-migrations    drive 'migrate' commands through the paced
                          migration state machine instead of committing
                          instantly
    --obs <MODE>          observability: 'off' (default), 'summary',
                          'json:PATH', 'det', or 'det:PATH' (det =
                          deterministic: null clock, byte-identical
                          snapshots and subscribe streams)
    --help                show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or policy-file error message; protocol-level
/// problems are reported in-band as `ok: false` response lines.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["paced-migrations"])?;
    let cli_obs = CliObs::from_args(&args)?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let admission = args.get("admission").unwrap_or("best-fit");
    let admission = policy_by_name(admission)
        .ok_or_else(|| format!("unknown admission policy {admission:?}"))?;

    let mut config = DaemonConfig::new(
        policy.server_spec(),
        policy.pool_commitments(),
        policy.qos_policy().normal,
        policy.calendar(),
    );
    config.weeks = args.get_parsed("weeks", 1usize)?;
    if config.weeks == 0 {
        return Err("--weeks must be at least 1".to_string());
    }
    config.threads = args.get_parsed("threads", 1usize)?;
    config.queue_deadline_slots = args.get_parsed("queue-deadline", 12u64)?;
    config.retry_backoff_base = args.get_parsed("retry-backoff", config.retry_backoff_base)?;
    config.retry_max_attempts = args.get_parsed("retry-attempts", config.retry_max_attempts)?;
    if args.has_switch("paced-migrations") {
        config.migration = ropus::prelude::MigrationConfig::paced();
    }
    if let Some(cap) = args.get("max-servers") {
        let cap: usize = cap.parse().map_err(|e| format!("bad --max-servers: {e}"))?;
        config.max_servers = Some(cap);
    }

    let mut daemon = Daemon::with_policy(config, admission);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    daemon
        .run(
            BufReader::new(stdin.lock()),
            BufWriter::new(stdout.lock()),
            ObsCtx::from(cli_obs.collector()),
        )
        .map_err(|e| format!("serve I/O failed: {e}"))?;
    cli_obs.finish()
}
