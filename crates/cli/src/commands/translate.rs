//! `ropus translate` — run the QoS translation and report every
//! intermediate per application.

use crate::args::Args;
use crate::commands::{load_traces, translate_all};
use crate::policy::PolicyFile;

const HELP: &str = "\
ropus translate — map application demands onto the two classes of service

OPTIONS:
    --traces <FILE>    demand-trace CSV (required)
    --policy <FILE>    policy JSON (required); normal-mode QoS is used
    --failure-mode     translate under the failure-mode QoS instead
    --json             emit machine-readable JSON instead of a table
    --help             show this message";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage, I/O, or translation error message.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["failure-mode", "json"])?;
    let policy = PolicyFile::load(args.require("policy")?)?;
    let traces = load_traces(args.require("traces")?, policy.calendar())?;
    let qos = if args.has_switch("failure-mode") {
        policy.qos_policy().failure
    } else {
        policy.qos_policy().normal
    };

    let translated = translate_all(&traces, &qos, &policy, &ropus::prelude::Obs::off())?;
    if args.has_switch("json") {
        let reports: Vec<_> = translated
            .iter()
            .map(|(name, _, report)| (name, report))
            .collect();
        let json = serde_json::to_string_pretty(&reports)
            .map_err(|e| format!("cannot serialize reports: {e}"))?;
        println!("{json}");
        return Ok(());
    }

    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>10} {:>11}",
        "app", "D_max", "D_new_max", "reduction", "peak alloc", "degraded", "worst-case U"
    );
    for (name, _, report) in &translated {
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>9.1}% {:>12.2} {:>9.2}% {:>11.3}",
            name,
            report.d_max,
            report.d_new_max,
            100.0 * report.max_cap_reduction,
            report.peak_allocation,
            100.0 * report.degraded_fraction,
            report.max_worst_case_utilization,
        );
    }
    let total_peak: f64 = translated.iter().map(|(_, _, r)| r.peak_allocation).sum();
    println!("\nC_peak (sum of peak allocations): {total_peak:.1} CPUs");
    Ok(())
}
