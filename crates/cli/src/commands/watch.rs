//! `ropus watch` — render a `serve` subscribe telemetry stream as
//! one-line human-readable entries.

use std::io::{BufRead, BufReader, ErrorKind, Write};

use ropus::daemon::protocol::StreamLine;
use ropus_obs::{names, AlertKind};

use crate::args::Args;

const HELP: &str = "\
ropus watch — render a `ropus serve` subscribe telemetry stream

Reads line-delimited JSON from --file PATH (or stdin): the output of a
serve session that issued {\"cmd\":\"subscribe\"}. Stream lines render
as one-line entries; response lines (and anything else that is not a
stream line) pass through unchanged unless --quiet drops them.

    [slot 12] event  admitted \"a\" -> server 0
    [slot 64] ALERT  fire slo.burn.fast on \"bursty\" (burn 33.3x/6.9x, budget 41%)
    [slot 64] delta  3 counters, 1 histograms, 2 events

Pipe a live session through it:

    ropus serve --policy policy.json --obs det < script.jsonl | ropus watch

OPTIONS:
    --file <PATH>      read the stream from a file instead of stdin
    --quiet            drop non-stream (response) lines
    --help             show this message";

/// Renders one stream line as a human-readable entry.
fn render(line: &StreamLine) -> String {
    let slot = line.slot;
    if line.kind == names::WATCH_STREAM_EVENT {
        let event = line.event.as_deref().unwrap_or("?");
        let name = line.name.as_deref().unwrap_or("?");
        match line.server {
            Some(server) => format!("[slot {slot}] event  {event} {name:?} -> server {server}"),
            None => format!("[slot {slot}] event  {event} {name:?}"),
        }
    } else if line.kind == names::WATCH_STREAM_ALERT {
        match &line.alert {
            Some(a) => {
                let kind = match a.kind {
                    AlertKind::Fire => "fire",
                    AlertKind::Clear => "clear",
                };
                // A multi-slot tick drains its alerts at the end, so the
                // transition's own slot is the one worth showing.
                format!(
                    "[slot {}] ALERT  {kind} {} on {:?} (burn {:.1}x/{:.1}x, budget {:.0}%)",
                    a.slot,
                    a.rule,
                    a.app,
                    a.short_burn,
                    a.long_burn,
                    a.budget_remaining * 100.0
                )
            }
            None => format!("[slot {slot}] ALERT  (missing payload)"),
        }
    } else if line.kind == names::WATCH_STREAM_DELTA {
        match &line.delta {
            Some(d) => format!(
                "[slot {slot}] delta  {} counters, {} gauges, {} histograms, {} spans, {} events",
                d.counters.len(),
                d.gauges.len(),
                d.histograms.len(),
                d.spans.len(),
                d.events.len()
            ),
            None => format!("[slot {slot}] delta  (missing payload)"),
        }
    } else {
        format!("[slot {slot}] {}", line.kind)
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage or I/O error message; unparseable lines are not
/// errors (they are echoed, or dropped under --quiet).
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(tokens, &["quiet"])?;
    let quiet = args.has_switch("quiet");
    let reader: Box<dyn BufRead> = match args.get("file") {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open stream file {path}: {e}"))?;
            Box::new(BufReader::new(file))
        }
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("cannot read stream: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let rendered = match serde_json::from_str::<StreamLine>(&line) {
            Ok(stream) => render(&stream),
            Err(_) if !quiet => line,
            Err(_) => continue,
        };
        if let Err(e) = writeln!(out, "{rendered}") {
            // A downstream reader (`head`, `grep -q`) closing the pipe
            // is the normal way to stop watching, not an error.
            if e.kind() == ErrorKind::BrokenPipe {
                return Ok(());
            }
            return Err(format!("cannot write stream: {e}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_stream_line_kind() {
        let mut event = StreamLine::new(names::WATCH_STREAM_EVENT, 12);
        event.event = Some("admitted".to_string());
        event.name = Some("a".to_string());
        event.server = Some(0);
        assert_eq!(
            render(&event),
            "[slot 12] event  admitted \"a\" -> server 0"
        );

        let mut alert = StreamLine::new(names::WATCH_STREAM_ALERT, 64);
        let payload: ropus_obs::AlertEvent = serde_json::from_str(
            r#"{"rule":"slo.burn.fast","app":"bursty","kind":"Fire","slot":64,
                "short_window":12,"long_window":144,"short_bad":12,"long_bad":25,
                "short_burn":33.33,"long_burn":6.9,"allowance":0.03,
                "budget_remaining":0.41}"#,
        )
        .unwrap();
        alert.alert = Some(payload);
        assert_eq!(
            render(&alert),
            "[slot 64] ALERT  fire slo.burn.fast on \"bursty\" (burn 33.3x/6.9x, budget 41%)"
        );

        let mut delta = StreamLine::new(names::WATCH_STREAM_DELTA, 64);
        delta.delta = Some(ropus_obs::ObsReport::default());
        assert_eq!(
            render(&delta),
            "[slot 64] delta  0 counters, 0 gauges, 0 histograms, 0 spans, 0 events"
        );
    }

    #[test]
    fn responses_do_not_parse_as_stream_lines() {
        assert!(serde_json::from_str::<StreamLine>(r#"{"ok":true,"cmd":"tick"}"#).is_err());
    }
}
