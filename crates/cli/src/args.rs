//! A small `--flag value` / `--switch` argument parser.
//!
//! The CLI deliberately avoids an argument-parsing dependency: its needs
//! are a handful of string/number flags per subcommand, and the sanctioned
//! dependency set is kept minimal.

use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--switch` flags.
    ///
    /// A token starting with `--` consumes the following token as its
    /// value unless that token also starts with `--` (then it is a
    /// switch). Positional arguments are rejected.
    pub fn parse(tokens: &[String], known_switches: &[&str]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = tokens.iter().peekable();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {token:?}"));
            };
            if known_switches.contains(&name) {
                args.switches.push(name.to_string());
                continue;
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked").clone();
                    if args.values.insert(name.to_string(), value).is_some() {
                        return Err(format!("flag --{name} given twice"));
                    }
                }
                _ => return Err(format!("flag --{name} expects a value")),
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of a required flag.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name} has invalid value {raw:?}")),
            None => Ok(default),
        }
    }

    /// Whether the bare switch `--name` was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let args = Args::parse(
            &tokens(&["--apps", "12", "--thorough", "--seed", "7"]),
            &["thorough"],
        )
        .unwrap();
        assert_eq!(args.get("apps"), Some("12"));
        assert_eq!(args.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(args.has_switch("thorough"));
        assert!(!args.has_switch("fast"));
        assert_eq!(args.get_parsed("weeks", 4usize).unwrap(), 4);
    }

    #[test]
    fn rejects_positional_and_valueless_flags() {
        assert!(Args::parse(&tokens(&["positional"]), &[]).is_err());
        assert!(Args::parse(&tokens(&["--out"]), &[]).is_err());
        assert!(Args::parse(&tokens(&["--out", "--thorough"]), &["thorough"]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_bad_numbers() {
        assert!(Args::parse(&tokens(&["--a", "1", "--a", "2"]), &[]).is_err());
        let args = Args::parse(&tokens(&["--n", "xyz"]), &[]).unwrap();
        assert!(args.get_parsed("n", 0u32).is_err());
    }

    #[test]
    fn require_reports_missing_flag() {
        let args = Args::parse(&[], &[]).unwrap();
        let err = args.require("traces").unwrap_err();
        assert!(err.contains("--traces"));
    }
}
