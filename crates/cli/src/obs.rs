//! `--obs` flag handling shared by the subcommands, plus the
//! human-readable [`ObsReport`] pretty-printer behind `ropus obs-report`.

use std::collections::BTreeMap;
use std::io::Write;

use ropus::prelude::{Obs, ObsReport};

use crate::args::Args;

/// Where the collected observability data goes when the command ends.
enum Sink {
    /// `--obs off` (or absent): collect nothing.
    Off,
    /// `--obs summary`: digest to stderr, keeping stdout machine-clean.
    Summary,
    /// `--obs json:PATH`: full pretty-printed snapshot to a file.
    Json(String),
    /// `--obs det`: deterministic collection (null clock, no
    /// timing-dependent values), nothing emitted at exit. The collector
    /// exists so in-band consumers — the `serve` subscribe stream — see
    /// byte-identical snapshots across runs and thread counts.
    Det,
    /// `--obs det:PATH`: deterministic collection, snapshot to a file.
    DetJson(String),
}

/// The collector a subcommand threads through the pipeline entry points
/// (as an `ObsCtx`), plus what to do with it at exit.
pub struct CliObs {
    sink: Sink,
    obs: Obs,
}

impl CliObs {
    /// Parses `--obs off|summary|json:PATH|det|det:PATH`. The `summary`
    /// and `json:` modes collect with the wall clock: CLI runs are for
    /// humans, so spans carry real durations. The `det` modes collect
    /// with `Obs::deterministic()` — a null clock with timing-dependent
    /// values suppressed — so every snapshot (including the `serve`
    /// subscribe stream's deltas) is byte-identical across runs and
    /// `--threads` settings.
    ///
    /// # Errors
    ///
    /// Returns a usage message for an unknown mode or an empty path.
    pub fn from_args(args: &Args) -> Result<CliObs, String> {
        let sink = match args.get("obs") {
            None | Some("off") => Sink::Off,
            Some("summary") => Sink::Summary,
            Some("det") => Sink::Det,
            Some(spec) => {
                if let Some(path) = spec.strip_prefix("json:") {
                    if path.is_empty() {
                        return Err("--obs json: needs a path".to_string());
                    }
                    Sink::Json(path.to_string())
                } else if let Some(path) = spec.strip_prefix("det:") {
                    if path.is_empty() {
                        return Err("--obs det: needs a path".to_string());
                    }
                    Sink::DetJson(path.to_string())
                } else {
                    return Err(format!(
                        "--obs must be 'off', 'summary', 'json:PATH', 'det', or 'det:PATH', got {spec:?}"
                    ));
                }
            }
        };
        let obs = match sink {
            Sink::Off => Obs::off(),
            Sink::Det | Sink::DetJson(_) => Obs::deterministic(),
            _ => Obs::wall(),
        };
        Ok(CliObs { sink, obs })
    }

    /// The collector to wrap in an `ObsCtx` for pipeline methods.
    pub fn collector(&self) -> &Obs {
        &self.obs
    }

    /// A snapshot for embedding into a report's optional `obs` field, or
    /// `None` when collection is off (keeping the JSON unchanged).
    pub fn snapshot(&self) -> Option<ObsReport> {
        if self.obs.is_enabled() {
            Some(self.obs.report())
        } else {
            None
        }
    }

    /// Emits the collected data to the configured sink.
    ///
    /// # Errors
    ///
    /// Returns an I/O error message when the JSON file cannot be written.
    pub fn finish(self) -> Result<(), String> {
        match self.sink {
            Sink::Off | Sink::Det => Ok(()),
            Sink::Summary => {
                let mut out = Vec::new();
                write_summary(&self.obs.report(), &mut out)
                    .map_err(|e| format!("cannot render obs summary: {e}"))?;
                eprint!("{}", String::from_utf8_lossy(&out));
                Ok(())
            }
            Sink::Json(path) | Sink::DetJson(path) => {
                let json = serde_json::to_string_pretty(&self.obs.report())
                    .map_err(|e| format!("cannot serialize obs report: {e}"))?;
                std::fs::write(&path, json + "\n")
                    .map_err(|e| format!("cannot write obs report to {path}: {e}"))
            }
        }
    }
}

/// Renders the human-readable digest of an [`ObsReport`]: spans and
/// events aggregated by name, then each metric family.
///
/// # Errors
///
/// Propagates write errors from `out`.
pub fn write_summary(report: &ObsReport, out: &mut impl Write) -> std::io::Result<()> {
    if report.is_empty() {
        return writeln!(out, "observability: nothing collected");
    }
    writeln!(out, "observability summary")?;
    if !report.spans.is_empty() {
        // Aggregate spans by name: count and total duration.
        let mut by_name: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
        for s in &report.spans {
            let entry = by_name.entry(s.name.as_str()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += s.wall_ms;
        }
        writeln!(out, "  spans:")?;
        for (name, (count, wall_ms)) in by_name {
            writeln!(out, "    {name:<40} {count:>6} x {wall_ms:>10.2} ms")?;
        }
    }
    if !report.events.is_empty() {
        let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &report.events {
            *by_name.entry(e.name.as_str()).or_insert(0) += 1;
        }
        writeln!(out, "  events:")?;
        for (name, count) in by_name {
            writeln!(out, "    {name:<40} {count:>6}")?;
        }
    }
    if !report.counters.is_empty() {
        writeln!(out, "  counters:")?;
        for c in &report.counters {
            writeln!(out, "    {:<40} {:>6}", c.name, c.value)?;
        }
    }
    if !report.gauges.is_empty() {
        writeln!(out, "  gauges:")?;
        for g in &report.gauges {
            writeln!(out, "    {:<40} {:>10.3}", g.name, g.value)?;
        }
    }
    if !report.histograms.is_empty() {
        // Registry-name order keeps runs diffable even if the report was
        // assembled (or absorbed from deltas) in another order.
        let mut histograms: Vec<_> = report.histograms.iter().collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        writeln!(out, "  histograms:")?;
        for h in histograms {
            let buckets: Vec<String> = h
                .bounds
                .iter()
                .zip(&h.counts)
                .map(|(b, c)| format!("<={b}: {c}"))
                .collect();
            // lint:allow(panic-slice-index): HistogramSnapshot always
            // carries bounds.len()+1 counts, so `last` exists.
            let overflow = h.counts[h.counts.len() - 1];
            writeln!(
                out,
                "    {:<40} {:>6}  [{}, >: {}]",
                h.name,
                h.total,
                buckets.join(", "),
                overflow
            )?;
            if let (Some(p50), Some(p95), Some(p99)) =
                (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
            {
                writeln!(
                    out,
                    "    {:<40}         p50<={p50} p95<={p95} p99<={p99}",
                    ""
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let tokens: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&tokens, &[]).unwrap()
    }

    #[test]
    fn off_by_default_and_explicit() {
        for tokens in [&[][..], &["--obs", "off"][..]] {
            let cli = CliObs::from_args(&parse(tokens)).unwrap();
            assert!(!cli.collector().is_enabled());
            assert!(cli.snapshot().is_none());
            cli.finish().unwrap();
        }
    }

    #[test]
    fn summary_and_json_modes_enable_collection() {
        for tokens in [&["--obs", "summary"][..], &["--obs", "json:/tmp/x"][..]] {
            let cli = CliObs::from_args(&parse(tokens)).unwrap();
            assert!(cli.collector().is_enabled());
            assert!(cli.snapshot().is_some());
        }
    }

    #[test]
    fn bad_modes_are_rejected() {
        for tokens in [&["--obs", "verbose"][..], &["--obs", "json:"][..]] {
            assert!(CliObs::from_args(&parse(tokens)).is_err());
        }
    }

    #[test]
    fn summary_renders_every_section() {
        let obs = Obs::deterministic();
        drop(obs.span("phase.one"));
        obs.event("thing.happened").with_u64("n", 3).emit();
        obs.counter("total.things", 7);
        obs.gauge("level", 0.5);
        obs.histogram("dist", &[1.0, 2.0], 1.5);
        let mut out = Vec::new();
        write_summary(&obs.report(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for needle in [
            "spans:",
            "phase.one",
            "events:",
            "thing.happened",
            "counters:",
            "total.things",
            "gauges:",
            "level",
            "histograms:",
            "dist",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn det_modes_collect_deterministically() {
        let cli = CliObs::from_args(&parse(&["--obs", "det"])).unwrap();
        assert!(cli.collector().is_enabled());
        assert!(cli.snapshot().is_some());
        cli.finish().unwrap();
        assert!(CliObs::from_args(&parse(&["--obs", "det:"])).is_err());
    }

    #[test]
    fn summary_prints_histogram_percentiles_in_name_order() {
        let obs = Obs::deterministic();
        obs.histogram("zz.dist", &[1.0, 2.0], 1.5);
        obs.histogram("aa.dist", &[1.0, 2.0], 0.5);
        let mut out = Vec::new();
        write_summary(&obs.report(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let aa = text.find("aa.dist").unwrap();
        let zz = text.find("zz.dist").unwrap();
        assert!(aa < zz, "histograms sort by name:\n{text}");
        assert!(
            text.contains("p50<=1 p95<=1 p99<=1"),
            "percentiles:\n{text}"
        );
        assert!(
            text.contains("p50<=2 p95<=2 p99<=2"),
            "percentiles:\n{text}"
        );
    }

    #[test]
    fn empty_report_says_so() {
        let mut out = Vec::new();
        write_summary(&ObsReport::default(), &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("nothing collected"));
    }
}
