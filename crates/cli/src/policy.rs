//! The JSON policy file consumed by `translate`, `consolidate`, and
//! `plan`: pool configuration plus per-mode application QoS.
//!
//! ```json
//! {
//!   "slot_minutes": 5,
//!   "server": { "cpus": 16, "cpu_capacity": 1.0 },
//!   "commitments": { "theta": 0.95, "deadline_minutes": 60 },
//!   "normal": {
//!     "band": { "low": 0.5, "high": 0.66 },
//!     "degradation": {
//!       "max_fraction": 0.03, "u_degr": 0.9,
//!       "time_limit_minutes": 30, "max_epochs_per_week": null
//!     }
//!   },
//!   "failure": { "band": { "low": 0.5, "high": 0.66 }, "degradation": null }
//! }
//! ```

use serde::Deserialize;

use ropus::prelude::*;
use ropus_trace::Calendar;

/// Deserialized policy file.
#[derive(Debug, Clone, Deserialize)]
pub struct PolicyFile {
    /// Observation slot length in minutes (default 5).
    #[serde(default = "default_slot_minutes")]
    pub slot_minutes: u32,
    /// Server shape (default: the paper's 16-way).
    #[serde(default)]
    pub server: ServerShape,
    /// The CoS2 commitment.
    pub commitments: CosSpec,
    /// Normal-mode application QoS (applied to every application).
    pub normal: AppQos,
    /// Failure-mode application QoS; defaults to `normal` when omitted.
    #[serde(default)]
    pub failure: Option<AppQos>,
}

fn default_slot_minutes() -> u32 {
    5
}

/// Server shape as written in the policy file.
#[derive(Debug, Clone, Copy, Deserialize)]
pub struct ServerShape {
    /// CPUs per server.
    pub cpus: u32,
    /// Capacity of one CPU in allocation units.
    #[serde(default = "default_cpu_capacity")]
    pub cpu_capacity: f64,
}

fn default_cpu_capacity() -> f64 {
    1.0
}

impl Default for ServerShape {
    fn default() -> Self {
        ServerShape {
            cpus: 16,
            cpu_capacity: 1.0,
        }
    }
}

impl PolicyFile {
    /// Loads and validates a policy file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on I/O, JSON, or semantic errors.
    pub fn load(path: &str) -> Result<PolicyFile, String> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read policy file {path}: {e}"))?;
        let policy: PolicyFile =
            serde_json::from_str(&raw).map_err(|e| format!("invalid policy file {path}: {e}"))?;
        policy.validate()?;
        Ok(policy)
    }

    /// Semantic validation beyond what serde enforces.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        Calendar::new(self.slot_minutes).map_err(|e| format!("invalid slot_minutes: {e}"))?;
        if self.server.cpus == 0 {
            return Err("server.cpus must be at least 1".to_string());
        }
        if !(self.server.cpu_capacity.is_finite() && self.server.cpu_capacity > 0.0) {
            return Err("server.cpu_capacity must be positive".to_string());
        }
        self.qos_policy()
            .validate()
            .map_err(|e| format!("invalid QoS policy: {e}"))
    }

    /// The trace calendar the policy implies.
    pub fn calendar(&self) -> Calendar {
        Calendar::new(self.slot_minutes).expect("validated at load")
    }

    /// The server spec the policy implies.
    pub fn server_spec(&self) -> ServerSpec {
        ServerSpec::new(self.server.cpus, self.server.cpu_capacity)
    }

    /// The pool commitments the policy implies.
    pub fn pool_commitments(&self) -> PoolCommitments {
        PoolCommitments::new(self.commitments)
    }

    /// The two-mode QoS policy (failure defaults to normal).
    pub fn qos_policy(&self) -> QosPolicy {
        QosPolicy {
            normal: self.normal,
            failure: self.failure.unwrap_or(self.normal),
        }
    }
}

/// The paper's case-study policy as a ready-to-edit JSON template.
pub const TEMPLATE: &str = r#"{
  "slot_minutes": 5,
  "server": { "cpus": 16, "cpu_capacity": 1.0 },
  "commitments": { "theta": 0.95, "deadline_minutes": 60 },
  "normal": {
    "band": { "low": 0.5, "high": 0.66 },
    "degradation": {
      "max_fraction": 0.03,
      "u_degr": 0.9,
      "time_limit_minutes": 30,
      "max_epochs_per_week": null
    }
  },
  "failure": {
    "band": { "low": 0.5, "high": 0.66 },
    "degradation": {
      "max_fraction": 0.03,
      "u_degr": 0.9,
      "time_limit_minutes": null,
      "max_epochs_per_week": null
    }
  }
}"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_parses_and_validates() {
        let policy: PolicyFile = serde_json::from_str(TEMPLATE).unwrap();
        policy.validate().unwrap();
        assert_eq!(policy.slot_minutes, 5);
        assert_eq!(policy.server_spec().cpus(), 16);
        assert_eq!(policy.commitments.theta(), 0.95);
        assert!(policy.qos_policy().normal.degradation().is_some());
        assert_eq!(
            policy
                .qos_policy()
                .failure
                .degradation()
                .unwrap()
                .time_limit_minutes(),
            None
        );
    }

    #[test]
    fn failure_defaults_to_normal() {
        let json = r#"{
            "commitments": { "theta": 0.6, "deadline_minutes": 60 },
            "normal": { "band": { "low": 0.5, "high": 0.66 }, "degradation": null }
        }"#;
        let policy: PolicyFile = serde_json::from_str(json).unwrap();
        policy.validate().unwrap();
        assert_eq!(policy.qos_policy().failure, policy.qos_policy().normal);
        assert_eq!(
            policy.server.cpus, 16,
            "server defaults to the paper's 16-way"
        );
    }

    #[test]
    fn semantic_validation_rejects_bad_slots() {
        let json = r#"{
            "slot_minutes": 7,
            "commitments": { "theta": 0.6, "deadline_minutes": 60 },
            "normal": { "band": { "low": 0.5, "high": 0.66 }, "degradation": null }
        }"#;
        let policy: PolicyFile = serde_json::from_str(json).unwrap();
        assert!(policy.validate().is_err());
    }

    #[test]
    fn serde_rejects_invalid_qos_inside_policy() {
        let json = r#"{
            "commitments": { "theta": 1.5, "deadline_minutes": 60 },
            "normal": { "band": { "low": 0.5, "high": 0.66 }, "degradation": null }
        }"#;
        assert!(serde_json::from_str::<PolicyFile>(json).is_err());
    }
}
