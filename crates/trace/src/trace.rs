use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize, Value};

use crate::kernels;
use crate::stats;
use crate::{Calendar, TraceError};

/// A validated, non-negative time series aligned to a [`Calendar`].
///
/// `Trace` is the common currency of R-Opus: raw CPU *demand* observations,
/// per-class *allocation* requirements produced by the QoS translation, and
/// *delivered* allocations measured by the workload-manager simulation are
/// all traces. Every sample is guaranteed finite and non-negative.
///
/// # Representation
///
/// Samples live in an immutable, reference-counted buffer (`Arc<Vec<f64>>`)
/// plus a window (`start`, `len`) into it. Consequences:
///
/// * [`Trace::clone`] is O(1) — it bumps a reference count; the clones
///   share storage (observable via [`Trace::shares_buffer`]);
/// * windowing operations such as [`Trace::weeks_range`] allocate nothing:
///   they return a new window over the same buffer;
/// * the buffer can never be mutated after construction, so every derived
///   statistic (and any cache keyed by workload identity, such as the
///   placement `FitEngine` memo) stays valid for the life of the trace.
///
/// For borrowed, lifetime-bound access use [`TraceView`].
///
/// # Example
///
/// ```
/// use ropus_trace::{Calendar, Trace};
///
/// # fn main() -> Result<(), ropus_trace::TraceError> {
/// let trace = Trace::from_samples(Calendar::five_minute(), vec![1.0, 2.5, 0.5])?;
/// assert_eq!(trace.peak(), 2.5);
/// assert_eq!(trace.len(), 3);
/// let cheap = trace.clone(); // shares the sample buffer, no copy
/// assert!(cheap.shares_buffer(&trace));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Deserialize)]
#[serde(try_from = "RawTrace")]
pub struct Trace {
    calendar: Calendar,
    // `Arc<Vec<f64>>` rather than `Arc<[f64]>`: `Arc::new(vec)` adopts the
    // Vec's allocation, so construction from an owned Vec is copy-free,
    // while `Arc<[f64]>::from(vec)` would memcpy every sample. The extra
    // pointer hop is paid once per `samples()` call, not per sample.
    buf: Arc<Vec<f64>>,
    start: usize,
    len: usize,
    // Lazily computed ascending sort of the *window's* samples, shared
    // across clones through its own `Arc` (clones of one window reuse the
    // sort; distinct windows each cache their own). Not serialized and
    // ignored by `PartialEq`: it is derived state, recomputable from the
    // immutable buffer at any time.
    sorted: Arc<OnceLock<Vec<f64>>>,
}

/// Unvalidated mirror used so deserialized traces re-run the constructor
/// checks (serde derive alone would accept NaNs and negatives).
#[derive(Deserialize)]
struct RawTrace {
    calendar: Calendar,
    samples: Vec<f64>,
}

impl TryFrom<RawTrace> for Trace {
    type Error = TraceError;

    fn try_from(raw: RawTrace) -> Result<Self, TraceError> {
        Trace::from_samples(raw.calendar, raw.samples)
    }
}

/// Serializes as `{ calendar, samples }` — the *window's* samples, so the
/// wire format is identical to the former owned-`Vec` representation and
/// round-trips through `RawTrace` validation.
impl Serialize for Trace {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("calendar".to_string(), self.calendar.serialize()),
            ("samples".to_string(), self.samples().serialize()),
        ])
    }
}

/// Equality is value equality of the window (calendar + samples), not
/// buffer identity: a windowed trace equals an eagerly-copied one.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.calendar == other.calendar && self.samples() == other.samples()
    }
}

impl Trace {
    /// Creates a trace from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty vector and
    /// [`TraceError::InvalidSample`] if any sample is negative, NaN, or
    /// infinite.
    pub fn from_samples(calendar: Calendar, samples: Vec<f64>) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        let len = samples.len();
        Ok(Trace {
            calendar,
            buf: Arc::new(samples),
            start: 0,
            len,
            sorted: Arc::new(OnceLock::new()),
        })
    }

    /// Creates a trace sharing an already-validated buffer. The callers are
    /// `TraceView::to_trace`, the windowing methods, and
    /// [`FleetMatrix::column_trace`](crate::FleetMatrix::column_trace),
    /// whose slices come from an existing validated buffer, so
    /// re-validation is skipped.
    pub(crate) fn from_window(
        calendar: Calendar,
        buf: Arc<Vec<f64>>,
        start: usize,
        len: usize,
    ) -> Self {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= buf.len()));
        Trace {
            calendar,
            buf,
            start,
            len,
            sorted: Arc::new(OnceLock::new()),
        }
    }

    /// Creates a trace where every slot holds the same value.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`from_samples`](Self::from_samples).
    pub fn constant(calendar: Calendar, value: f64, len: usize) -> Result<Self, TraceError> {
        Self::from_samples(calendar, vec![value; len])
    }

    /// The calendar the samples are aligned to.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Number of samples in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace holds no samples. Always `false` for a constructed
    /// trace; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[f64] {
        // lint:allow(panic-slice-index): the window invariant
        // `start + len <= buf.len()` is established by every constructor
        // and the buffer is immutable, so the range is always in bounds.
        &self.buf[self.start..self.start + self.len]
    }

    /// A borrowed, lifetime-bound view of this trace (no refcount bump).
    pub fn view(&self) -> TraceView<'_> {
        TraceView {
            calendar: self.calendar,
            samples: self.samples(),
        }
    }

    /// Whether `self` and `other` share the same underlying sample buffer
    /// (regardless of window). `Trace::clone` and the windowing methods
    /// preserve sharing; constructors allocate fresh buffers.
    pub fn shares_buffer(&self, other: &Trace) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Sample at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.samples().get(index).copied()
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, f64>> {
        self.samples().iter().copied()
    }

    /// Consumes the trace, returning the samples as an owned vector.
    ///
    /// This is the one deliberate copy in the API: the underlying buffer
    /// may be shared with other traces or be a sub-window, so an owned
    /// `Vec` cannot be recovered in place. Prefer [`Trace::samples`] or
    /// [`Trace::view`] when borrowing suffices.
    pub fn into_samples(self) -> Vec<f64> {
        // lint:allow(needless-trace-clone): materializing an owned Vec is
        // this method's documented purpose; the buffer may be shared.
        self.samples().to_vec()
    }

    /// Number of *whole* weeks covered (the paper's `W`). Trailing partial
    /// weeks are not counted.
    pub fn weeks(&self) -> usize {
        self.len / self.calendar.slots_per_week()
    }

    /// Checks the trace covers a whole number of weeks.
    ///
    /// The paper's resource-access-probability metric (`θ`) is defined per
    /// week and per slot-of-day, so placement requires whole weeks.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::PartialWeek`] otherwise.
    pub fn require_whole_weeks(&self) -> Result<(), TraceError> {
        let per_week = self.calendar.slots_per_week();
        if !self.len.is_multiple_of(per_week) {
            return Err(TraceError::PartialWeek {
                len: self.len,
                per_week,
            });
        }
        Ok(())
    }

    /// Largest sample (the paper's `D_max`).
    pub fn peak(&self) -> f64 {
        self.samples().iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        stats::mean(self.samples())
    }

    /// The window's samples in ascending order, sorted once on first use
    /// and cached (shared across clones of this window).
    ///
    /// Every percentile query on the trace reads this view, so repeated
    /// queries — the QoS translation asks for several percentiles of the
    /// same demand trace — pay the O(n log n) sort exactly once.
    pub fn sorted_samples(&self) -> &[f64] {
        self.sorted.get_or_init(|| kernels::sorted(self.samples()))
    }

    /// The `q`-th percentile of the samples with linear interpolation
    /// (the paper's `D_M%` uses `q = M`), answered from the cached
    /// [`sorted_samples`](Self::sorted_samples) view.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        stats::percentile_of_sorted(self.sorted_samples(), q)
    }

    /// The `q`-th percentile with upper nearest-rank semantics: guarantees
    /// at most `1 − q/100` of samples are strictly greater. This is the
    /// definition the `M_degr` demand cap must use (see
    /// [`stats::percentile_upper`]). Answered from the cached
    /// [`sorted_samples`](Self::sorted_samples) view.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_upper(&self, q: f64) -> f64 {
        stats::percentile_upper_of_sorted(self.sorted_samples(), q)
    }

    /// Returns a new trace with every sample transformed by `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `f` produces a negative or
    /// non-finite value.
    pub fn map<F>(&self, f: F) -> Result<Trace, TraceError>
    where
        F: FnMut(f64) -> f64,
    {
        Trace::from_samples(
            self.calendar,
            self.samples().iter().copied().map(f).collect(),
        )
    }

    /// Returns a new trace scaled by a non-negative factor.
    ///
    /// Scaling by exactly `1.0` shares the buffer instead of copying
    /// (`v * 1.0` is bit-identical to `v` for every valid sample).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `factor` is negative or
    /// non-finite.
    pub fn scaled(&self, factor: f64) -> Result<Trace, TraceError> {
        if factor == 1.0 {
            return Ok(self.clone());
        }
        // `min(v, ∞) = v` exactly, so the fused cap/scale kernel reduces
        // to a pure scale.
        let mut out = Vec::with_capacity(self.len);
        kernels::cap_scale_into(&mut out, self.samples(), f64::INFINITY, factor);
        Trace::from_samples(self.calendar, out)
    }

    /// Returns a new trace with samples capped at `limit` (`min(d, limit)`).
    ///
    /// This is the translation's demand cap at `D_new_max`. When the cap
    /// does not bind (`limit >= peak`), the result shares this trace's
    /// buffer — the common case for smooth workloads whose `M_degr` cap
    /// sits above the observed peak.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `limit` is negative or
    /// non-finite.
    pub fn capped(&self, limit: f64) -> Result<Trace, TraceError> {
        // A NaN limit compares false and falls through to the slow path,
        // preserving the historical `v.min(limit)` semantics.
        if limit >= self.peak() {
            return Ok(self.clone());
        }
        // `v · 1.0` is bit-identical to `v` for every valid sample, so the
        // fused kernel reduces to a pure cap.
        let mut out = Vec::with_capacity(self.len);
        kernels::cap_scale_into(&mut out, self.samples(), limit, 1.0);
        Trace::from_samples(self.calendar, out)
    }

    /// Fused `min(v, limit) · factor` over every sample — one pass, one
    /// allocation, bit-identical to [`capped`](Self::capped) followed by
    /// [`scaled`](Self::scaled) (`min` is exact and `· 1.0` is identity).
    ///
    /// When neither operation would change a sample the buffer is shared
    /// instead of copied, matching the individual methods' fast paths.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `limit` or `factor`
    /// produce a negative or non-finite sample.
    pub fn cap_scaled(&self, limit: f64, factor: f64) -> Result<Trace, TraceError> {
        if factor == 1.0 {
            return self.capped(limit);
        }
        if limit >= self.peak() {
            return self.scaled(factor);
        }
        let mut out = Vec::with_capacity(self.len);
        kernels::cap_scale_into(&mut out, self.samples(), limit, factor);
        Trace::from_samples(self.calendar, out)
    }

    /// Element-wise sum of two aligned traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Misaligned`] if lengths differ.
    pub fn checked_add(&self, other: &Trace) -> Result<Trace, TraceError> {
        if self.len() != other.len() {
            return Err(TraceError::Misaligned {
                left: self.len(),
                right: other.len(),
            });
        }
        let samples = self
            .samples()
            .iter()
            .zip(other.samples().iter())
            .map(|(a, b)| a + b)
            .collect();
        Trace::from_samples(self.calendar, samples)
    }

    /// Sums an iterator of aligned traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when the iterator is empty and
    /// [`TraceError::Misaligned`] when lengths differ.
    pub fn sum<'a, I>(traces: I) -> Result<Trace, TraceError>
    where
        I: IntoIterator<Item = &'a Trace>,
    {
        let mut iter = traces.into_iter();
        let first = iter.next().ok_or(TraceError::Empty)?;
        let mut acc = first.clone();
        for trace in iter {
            acc = acc.checked_add(trace)?;
        }
        Ok(acc)
    }

    /// A new trace holding whole weeks `start..end` (zero-based,
    /// end-exclusive), or `None` when the range is empty or out of range.
    ///
    /// Allocation-free: the result is a window over the shared buffer.
    pub fn weeks_range(&self, start: usize, end: usize) -> Option<Trace> {
        if start >= end {
            return None;
        }
        let per_week = self.calendar.slots_per_week();
        let lo = start.checked_mul(per_week)?;
        let hi = end.checked_mul(per_week)?;
        if hi > self.len {
            return None;
        }
        Some(Trace::from_window(
            self.calendar,
            Arc::clone(&self.buf),
            self.start.checked_add(lo)?,
            hi - lo,
        ))
    }

    /// The samples of week `w` (zero-based), or `None` if out of range.
    pub fn week(&self, w: usize) -> Option<&[f64]> {
        let per_week = self.calendar.slots_per_week();
        let start = w.checked_mul(per_week)?;
        let end = start.checked_add(per_week)?;
        self.samples().get(start..end)
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let samples = self.samples();
        let count = samples.iter().filter(|&&v| v > threshold).count();
        count as f64 / samples.len() as f64
    }

    /// Aggregates consecutive samples into coarser slots by averaging.
    ///
    /// `factor` consecutive samples collapse into one (e.g. 12 turns a
    /// 5-minute trace into an hourly one); the returned trace uses the
    /// correspondingly coarser calendar. Utilization measurements average
    /// naturally, which is exactly how monitoring systems roll traces up.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSlotLength`] when the coarser slot
    /// length does not divide a day, and [`TraceError::Misaligned`] when
    /// the trace length is not a multiple of `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> Result<Trace, TraceError> {
        assert!(factor > 0, "factor must be positive");
        if factor == 1 {
            return Ok(self.clone());
        }
        if !self.len.is_multiple_of(factor) {
            return Err(TraceError::Misaligned {
                left: self.len,
                right: factor,
            });
        }
        let coarse = Calendar::new(self.calendar.slot_minutes() * factor as u32)?;
        let samples: Vec<f64> = self
            .samples()
            .chunks(factor)
            .map(|chunk| chunk.iter().sum::<f64>() / factor as f64)
            .collect();
        Trace::from_samples(coarse, samples)
    }

    /// Normalizes samples to percentages of the peak (`0..=100`); a zero
    /// trace stays zero (sharing the buffer — nothing to rescale).
    pub fn normalized_percent(&self) -> Trace {
        let peak = self.peak();
        if peak == 0.0 {
            return self.clone();
        }
        self.map(|v| v / peak * 100.0)
            // lint:allow(panic-expect): peak > 0 here and samples are
            // finite non-negative by the Trace invariant, so the map
            // stays valid.
            .expect("normalizing finite non-negative samples cannot fail")
    }
}

impl AsRef<[f64]> for Trace {
    fn as_ref(&self) -> &[f64] {
        self.samples()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A borrowed view of trace samples: a calendar plus a sample slice.
///
/// `TraceView` is the lifetime-bound companion of [`Trace`]: `Copy`, two
/// words wide, and allocation-free to window. Layer boundaries that only
/// *read* samples (aggregation, replay, statistics) accept or produce
/// views; owning layers hold `Trace`s. Obtain one via [`Trace::view`] or
/// validate a foreign slice with [`TraceView::new`].
///
/// # Example
///
/// ```
/// use ropus_trace::{Calendar, Trace};
///
/// # fn main() -> Result<(), ropus_trace::TraceError> {
/// let trace = Trace::from_samples(Calendar::five_minute(), vec![1.0, 4.0])?;
/// let view = trace.view();
/// assert_eq!(view.peak(), 4.0);
/// assert_eq!(view.to_trace(), trace);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceView<'a> {
    calendar: Calendar,
    samples: &'a [f64],
}

impl<'a> TraceView<'a> {
    /// Creates a view over a foreign slice, running the same validity
    /// checks as [`Trace::from_samples`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty slice and
    /// [`TraceError::InvalidSample`] for negative, NaN, or infinite
    /// samples.
    pub fn new(calendar: Calendar, samples: &'a [f64]) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        Ok(TraceView { calendar, samples })
    }

    /// The calendar the samples are aligned to.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the view holds no samples. Always `false` for a constructed
    /// view; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The viewed samples.
    pub fn samples(&self) -> &'a [f64] {
        self.samples
    }

    /// Sample at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.samples.get(index).copied()
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'a, f64>> {
        self.samples.iter().copied()
    }

    /// Number of *whole* weeks covered; trailing partial weeks don't count.
    pub fn weeks(&self) -> usize {
        self.samples.len() / self.calendar.slots_per_week()
    }

    /// Checks the view covers a whole number of weeks.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::PartialWeek`] otherwise.
    pub fn require_whole_weeks(&self) -> Result<(), TraceError> {
        let per_week = self.calendar.slots_per_week();
        if !self.samples.len().is_multiple_of(per_week) {
            return Err(TraceError::PartialWeek {
                len: self.samples.len(),
                per_week,
            });
        }
        Ok(())
    }

    /// Largest sample.
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        stats::mean(self.samples)
    }

    /// The `q`-th percentile with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        stats::percentile(self.samples, q)
    }

    /// The `q`-th percentile with upper nearest-rank semantics.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_upper(&self, q: f64) -> f64 {
        stats::percentile_upper(self.samples, q)
    }

    /// A sub-view of whole weeks `start..end` (zero-based, end-exclusive),
    /// or `None` when the range is empty or out of range. Allocation-free.
    pub fn weeks_range(&self, start: usize, end: usize) -> Option<TraceView<'a>> {
        if start >= end {
            return None;
        }
        let per_week = self.calendar.slots_per_week();
        let lo = start.checked_mul(per_week)?;
        let hi = end.checked_mul(per_week)?;
        Some(TraceView {
            calendar: self.calendar,
            samples: self.samples.get(lo..hi)?,
        })
    }

    /// The samples of week `w` (zero-based), or `None` if out of range.
    pub fn week(&self, w: usize) -> Option<&'a [f64]> {
        let per_week = self.calendar.slots_per_week();
        let start = w.checked_mul(per_week)?;
        let end = start.checked_add(per_week)?;
        self.samples.get(start..end)
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let count = self.samples.iter().filter(|&&v| v > threshold).count();
        count as f64 / self.samples.len() as f64
    }

    /// Copies the view into an owned [`Trace`] (the one place a view
    /// allocates).
    pub fn to_trace(&self) -> Trace {
        // lint:allow(needless-trace-clone): converting a borrowed view to
        // an owned trace is this method's documented purpose.
        Trace::from_samples(self.calendar, self.samples.to_vec())
            // lint:allow(panic-expect): view samples were validated at
            // construction (TraceView::new or an existing Trace), so
            // re-validation cannot fail.
            .expect("view samples are already validated")
    }
}

impl<'a> From<&'a Trace> for TraceView<'a> {
    fn from(trace: &'a Trace) -> Self {
        trace.view()
    }
}

impl AsRef<[f64]> for TraceView<'_> {
    fn as_ref(&self) -> &[f64] {
        self.samples
    }
}

impl<'a> IntoIterator for &TraceView<'a> {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    #[test]
    fn rejects_empty_and_invalid_samples() {
        assert_eq!(Trace::from_samples(cal(), vec![]), Err(TraceError::Empty));
        assert!(matches!(
            Trace::from_samples(cal(), vec![1.0, -0.5]),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            Trace::from_samples(cal(), vec![f64::NAN]),
            Err(TraceError::InvalidSample { index: 0, .. })
        ));
        assert!(matches!(
            Trace::from_samples(cal(), vec![f64::INFINITY]),
            Err(TraceError::InvalidSample { .. })
        ));
    }

    #[test]
    fn accepts_zero_samples() {
        let t = Trace::from_samples(cal(), vec![0.0, 0.0]).unwrap();
        assert_eq!(t.peak(), 0.0);
        assert_eq!(t.normalized_percent().samples(), &[0.0, 0.0]);
    }

    #[test]
    fn clone_shares_storage() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0, 3.0]).unwrap();
        let c = t.clone();
        assert!(c.shares_buffer(&t));
        assert_eq!(c, t);
        // Fresh constructions do not share.
        let fresh = Trace::from_samples(cal(), vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!fresh.shares_buffer(&t));
        assert_eq!(fresh, t);
    }

    #[test]
    fn scaled_by_one_and_nonbinding_cap_share_storage() {
        let t = Trace::from_samples(cal(), vec![1.0, 5.0, 3.0]).unwrap();
        assert!(t.scaled(1.0).unwrap().shares_buffer(&t));
        assert!(t.capped(5.0).unwrap().shares_buffer(&t));
        assert!(t.capped(f64::INFINITY).unwrap().shares_buffer(&t));
        // A binding cap must still copy.
        let capped = t.capped(4.0).unwrap();
        assert!(!capped.shares_buffer(&t));
        assert_eq!(capped.samples(), &[1.0, 4.0, 3.0]);
        // A NaN limit falls through to the slow path, where `v.min(NaN)`
        // keeps `v` (f64::min ignores NaN) — samples unchanged, no sharing.
        let nan_capped = t.capped(f64::NAN).unwrap();
        assert_eq!(nan_capped.samples(), t.samples());
        assert!(!nan_capped.shares_buffer(&t));
        // A negative limit produces negative samples and errors.
        assert!(t.capped(-1.0).is_err());
    }

    #[test]
    fn peak_mean_percentile() {
        let t = Trace::from_samples(cal(), vec![1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(t.peak(), 4.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.percentile(100.0), 4.0);
        assert_eq!(t.percentile(0.0), 1.0);
    }

    #[test]
    fn capped_and_scaled() {
        let t = Trace::from_samples(cal(), vec![1.0, 5.0, 3.0]).unwrap();
        assert_eq!(t.capped(3.0).unwrap().samples(), &[1.0, 3.0, 3.0]);
        assert_eq!(t.scaled(2.0).unwrap().samples(), &[2.0, 10.0, 6.0]);
        assert!(t.scaled(-1.0).is_err());
    }

    #[test]
    fn checked_add_requires_alignment() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![3.0, 4.0]).unwrap();
        let c = Trace::from_samples(cal(), vec![1.0]).unwrap();
        assert_eq!(a.checked_add(&b).unwrap().samples(), &[4.0, 6.0]);
        assert!(matches!(
            a.checked_add(&c),
            Err(TraceError::Misaligned { .. })
        ));
    }

    #[test]
    fn sum_of_traces() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![0.5, 0.5]).unwrap();
        let s = Trace::sum([&a, &b]).unwrap();
        assert_eq!(s.samples(), &[1.5, 2.5]);
        let empty: [&Trace; 0] = [];
        assert_eq!(Trace::sum(empty), Err(TraceError::Empty));
    }

    #[test]
    fn whole_weeks_check() {
        let per_week = cal().slots_per_week();
        let whole = Trace::constant(cal(), 1.0, per_week * 2).unwrap();
        assert_eq!(whole.weeks(), 2);
        assert!(whole.require_whole_weeks().is_ok());
        let partial = Trace::constant(cal(), 1.0, per_week + 1).unwrap();
        assert_eq!(partial.weeks(), 1);
        assert!(matches!(
            partial.require_whole_weeks(),
            Err(TraceError::PartialWeek { .. })
        ));
    }

    #[test]
    fn week_slicing() {
        let per_week = cal().slots_per_week();
        let mut samples = vec![1.0; per_week];
        samples.extend(vec![2.0; per_week]);
        let t = Trace::from_samples(cal(), samples).unwrap();
        assert_eq!(t.week(0).unwrap()[0], 1.0);
        assert_eq!(t.week(1).unwrap()[0], 2.0);
        assert!(t.week(2).is_none());
    }

    #[test]
    fn weeks_range_extracts_whole_weeks() {
        let per_week = cal().slots_per_week();
        let mut samples = vec![1.0; per_week];
        samples.extend(vec![2.0; per_week]);
        samples.extend(vec![3.0; per_week]);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let middle = t.weeks_range(1, 2).unwrap();
        assert_eq!(middle.len(), per_week);
        assert_eq!(middle.samples()[0], 2.0);
        let tail = t.weeks_range(1, 3).unwrap();
        assert_eq!(tail.weeks(), 2);
        assert!(t.weeks_range(2, 2).is_none());
        assert!(t.weeks_range(0, 4).is_none());
    }

    #[test]
    fn weeks_range_is_a_shared_window() {
        let per_week = cal().slots_per_week();
        let t = Trace::constant(cal(), 1.0, per_week * 3).unwrap();
        let window = t.weeks_range(1, 3).unwrap();
        assert!(window.shares_buffer(&t));
        // Windows of windows still share and stay consistent.
        let inner = window.weeks_range(1, 2).unwrap();
        assert!(inner.shares_buffer(&t));
        assert_eq!(inner.len(), per_week);
        // Serialization captures only the window.
        let json = serde_json::to_string(&inner).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inner);
        assert!(!back.shares_buffer(&inner));
    }

    #[test]
    fn view_matches_trace() {
        let per_week = cal().slots_per_week();
        let samples: Vec<f64> = (0..per_week * 2).map(|i| (i % 7) as f64).collect();
        let t = Trace::from_samples(cal(), samples).unwrap();
        let v = t.view();
        assert_eq!(v.len(), t.len());
        assert_eq!(v.peak(), t.peak());
        assert_eq!(v.mean(), t.mean());
        assert_eq!(v.weeks(), t.weeks());
        assert_eq!(v.week(1), t.week(1));
        assert_eq!(v.samples(), t.samples());
        assert_eq!(v.to_trace(), t);
        let w = v.weeks_range(1, 2).unwrap();
        assert_eq!(w.samples(), t.weeks_range(1, 2).unwrap().samples());
    }

    #[test]
    fn view_validates_foreign_slices() {
        assert_eq!(TraceView::new(cal(), &[]), Err(TraceError::Empty));
        assert!(matches!(
            TraceView::new(cal(), &[1.0, f64::NAN]),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            TraceView::new(cal(), &[-1.0]),
            Err(TraceError::InvalidSample { index: 0, .. })
        ));
        let ok = TraceView::new(cal(), &[1.0, 2.0]).unwrap();
        assert_eq!(ok.samples(), &[1.0, 2.0]);
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.fraction_above(2.0), 0.5);
        assert_eq!(t.fraction_above(4.0), 0.0);
        assert_eq!(t.fraction_above(0.0), 1.0);
        assert_eq!(t.view().fraction_above(2.0), 0.5);
    }

    #[test]
    fn normalized_percent_peaks_at_100() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0, 4.0]).unwrap();
        let n = t.normalized_percent();
        assert_eq!(n.samples(), &[25.0, 50.0, 100.0]);
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // Deserialization re-runs the invariant checks.
        let forged = json.replace("2.0", "-2.0");
        assert!(serde_json::from_str::<Trace>(&forged).is_err());
    }

    #[test]
    fn downsample_averages_chunks() {
        let fine = Trace::from_samples(cal(), vec![1.0, 3.0, 2.0, 4.0, 0.0, 2.0]).unwrap();
        // 5-minute -> 15-minute slots.
        let coarse = fine.downsample(3).unwrap();
        assert_eq!(coarse.samples(), &[2.0, 2.0]);
        assert_eq!(coarse.calendar().slot_minutes(), 15);
        // Identity factor shares the buffer.
        let same = fine.downsample(1).unwrap();
        assert_eq!(same, fine);
        assert!(same.shares_buffer(&fine));
        // Length must divide.
        assert!(matches!(
            fine.downsample(4),
            Err(TraceError::Misaligned { .. })
        ));
        // Resulting slot length must divide a day (5 * 7 = 35 does not).
        let seven = Trace::constant(cal(), 1.0, 7).unwrap();
        assert!(matches!(
            seven.downsample(7),
            Err(TraceError::InvalidSlotLength { .. })
        ));
    }
}
