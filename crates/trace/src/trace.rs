use serde::{Deserialize, Serialize};

use crate::stats;
use crate::{Calendar, TraceError};

/// A validated, non-negative time series aligned to a [`Calendar`].
///
/// `Trace` is the common currency of R-Opus: raw CPU *demand* observations,
/// per-class *allocation* requirements produced by the QoS translation, and
/// *delivered* allocations measured by the workload-manager simulation are
/// all traces. Every sample is guaranteed finite and non-negative.
///
/// # Example
///
/// ```
/// use ropus_trace::{Calendar, Trace};
///
/// # fn main() -> Result<(), ropus_trace::TraceError> {
/// let trace = Trace::from_samples(Calendar::five_minute(), vec![1.0, 2.5, 0.5])?;
/// assert_eq!(trace.peak(), 2.5);
/// assert_eq!(trace.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawTrace")]
pub struct Trace {
    calendar: Calendar,
    samples: Vec<f64>,
}

/// Unvalidated mirror used so deserialized traces re-run the constructor
/// checks (serde derive alone would accept NaNs and negatives).
#[derive(Deserialize)]
struct RawTrace {
    calendar: Calendar,
    samples: Vec<f64>,
}

impl TryFrom<RawTrace> for Trace {
    type Error = TraceError;

    fn try_from(raw: RawTrace) -> Result<Self, TraceError> {
        Trace::from_samples(raw.calendar, raw.samples)
    }
}

impl Trace {
    /// Creates a trace from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty vector and
    /// [`TraceError::InvalidSample`] if any sample is negative, NaN, or
    /// infinite.
    pub fn from_samples(calendar: Calendar, samples: Vec<f64>) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        Ok(Trace { calendar, samples })
    }

    /// Creates a trace where every slot holds the same value.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`from_samples`](Self::from_samples).
    pub fn constant(calendar: Calendar, value: f64, len: usize) -> Result<Self, TraceError> {
        Self::from_samples(calendar, vec![value; len])
    }

    /// The calendar the samples are aligned to.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples. Always `false` for a constructed
    /// trace; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.samples.get(index).copied()
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, f64>> {
        self.samples.iter().copied()
    }

    /// Consumes the trace, returning the underlying samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Number of *whole* weeks covered (the paper's `W`). Trailing partial
    /// weeks are not counted.
    pub fn weeks(&self) -> usize {
        self.samples.len() / self.calendar.slots_per_week()
    }

    /// Checks the trace covers a whole number of weeks.
    ///
    /// The paper's resource-access-probability metric (`θ`) is defined per
    /// week and per slot-of-day, so placement requires whole weeks.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::PartialWeek`] otherwise.
    pub fn require_whole_weeks(&self) -> Result<(), TraceError> {
        let per_week = self.calendar.slots_per_week();
        if !self.samples.len().is_multiple_of(per_week) {
            return Err(TraceError::PartialWeek {
                len: self.samples.len(),
                per_week,
            });
        }
        Ok(())
    }

    /// Largest sample (the paper's `D_max`).
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.samples)
    }

    /// The `q`-th percentile of the samples with linear interpolation
    /// (the paper's `D_M%` uses `q = M`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        stats::percentile(&self.samples, q)
    }

    /// The `q`-th percentile with upper nearest-rank semantics: guarantees
    /// at most `1 − q/100` of samples are strictly greater. This is the
    /// definition the `M_degr` demand cap must use (see
    /// [`stats::percentile_upper`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_upper(&self, q: f64) -> f64 {
        stats::percentile_upper(&self.samples, q)
    }

    /// Returns a new trace with every sample transformed by `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `f` produces a negative or
    /// non-finite value.
    pub fn map<F>(&self, f: F) -> Result<Trace, TraceError>
    where
        F: FnMut(f64) -> f64,
    {
        Trace::from_samples(self.calendar, self.samples.iter().copied().map(f).collect())
    }

    /// Returns a new trace scaled by a non-negative factor.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `factor` is negative or
    /// non-finite.
    pub fn scaled(&self, factor: f64) -> Result<Trace, TraceError> {
        self.map(|v| v * factor)
    }

    /// Returns a new trace with samples capped at `limit` (`min(d, limit)`).
    ///
    /// This is the translation's demand cap at `D_new_max`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `limit` is negative or
    /// non-finite.
    pub fn capped(&self, limit: f64) -> Result<Trace, TraceError> {
        self.map(|v| v.min(limit))
    }

    /// Element-wise sum of two aligned traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Misaligned`] if lengths differ.
    pub fn checked_add(&self, other: &Trace) -> Result<Trace, TraceError> {
        if self.len() != other.len() {
            return Err(TraceError::Misaligned {
                left: self.len(),
                right: other.len(),
            });
        }
        let samples = self
            .samples
            .iter()
            .zip(other.samples.iter())
            .map(|(a, b)| a + b)
            .collect();
        Trace::from_samples(self.calendar, samples)
    }

    /// Sums an iterator of aligned traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when the iterator is empty and
    /// [`TraceError::Misaligned`] when lengths differ.
    pub fn sum<'a, I>(traces: I) -> Result<Trace, TraceError>
    where
        I: IntoIterator<Item = &'a Trace>,
    {
        let mut iter = traces.into_iter();
        let first = iter.next().ok_or(TraceError::Empty)?;
        let mut acc = first.clone();
        for trace in iter {
            acc = acc.checked_add(trace)?;
        }
        Ok(acc)
    }

    /// A new trace holding whole weeks `start..end` (zero-based,
    /// end-exclusive), or `None` when the range is empty or out of range.
    pub fn weeks_range(&self, start: usize, end: usize) -> Option<Trace> {
        if start >= end {
            return None;
        }
        let per_week = self.calendar.slots_per_week();
        let lo = start.checked_mul(per_week)?;
        let hi = end.checked_mul(per_week)?;
        let samples = self.samples.get(lo..hi)?.to_vec();
        // lint:allow(panic-expect): a sub-slice of an already validated
        // trace re-validates trivially (finite, non-negative, aligned).
        Some(Trace::from_samples(self.calendar, samples).expect("sub-slice of valid samples"))
    }

    /// The samples of week `w` (zero-based), or `None` if out of range.
    pub fn week(&self, w: usize) -> Option<&[f64]> {
        let per_week = self.calendar.slots_per_week();
        let start = w.checked_mul(per_week)?;
        let end = start.checked_add(per_week)?;
        self.samples.get(start..end)
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let count = self.samples.iter().filter(|&&v| v > threshold).count();
        count as f64 / self.samples.len() as f64
    }

    /// Aggregates consecutive samples into coarser slots by averaging.
    ///
    /// `factor` consecutive samples collapse into one (e.g. 12 turns a
    /// 5-minute trace into an hourly one); the returned trace uses the
    /// correspondingly coarser calendar. Utilization measurements average
    /// naturally, which is exactly how monitoring systems roll traces up.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSlotLength`] when the coarser slot
    /// length does not divide a day, and [`TraceError::Misaligned`] when
    /// the trace length is not a multiple of `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> Result<Trace, TraceError> {
        assert!(factor > 0, "factor must be positive");
        if factor == 1 {
            return Ok(self.clone());
        }
        if !self.samples.len().is_multiple_of(factor) {
            return Err(TraceError::Misaligned {
                left: self.samples.len(),
                right: factor,
            });
        }
        let coarse = Calendar::new(self.calendar.slot_minutes() * factor as u32)?;
        let samples: Vec<f64> = self
            .samples
            .chunks(factor)
            .map(|chunk| chunk.iter().sum::<f64>() / factor as f64)
            .collect();
        Trace::from_samples(coarse, samples)
    }

    /// Normalizes samples to percentages of the peak (`0..=100`); a zero
    /// trace stays zero.
    pub fn normalized_percent(&self) -> Trace {
        let peak = self.peak();
        if peak == 0.0 {
            return self.clone();
        }
        self.map(|v| v / peak * 100.0)
            // lint:allow(panic-expect): peak > 0 here and samples are
            // finite non-negative by the Trace invariant, so the map
            // stays valid.
            .expect("normalizing finite non-negative samples cannot fail")
    }
}

impl AsRef<[f64]> for Trace {
    fn as_ref(&self) -> &[f64] {
        &self.samples
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    #[test]
    fn rejects_empty_and_invalid_samples() {
        assert_eq!(Trace::from_samples(cal(), vec![]), Err(TraceError::Empty));
        assert!(matches!(
            Trace::from_samples(cal(), vec![1.0, -0.5]),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            Trace::from_samples(cal(), vec![f64::NAN]),
            Err(TraceError::InvalidSample { index: 0, .. })
        ));
        assert!(matches!(
            Trace::from_samples(cal(), vec![f64::INFINITY]),
            Err(TraceError::InvalidSample { .. })
        ));
    }

    #[test]
    fn accepts_zero_samples() {
        let t = Trace::from_samples(cal(), vec![0.0, 0.0]).unwrap();
        assert_eq!(t.peak(), 0.0);
        assert_eq!(t.normalized_percent().samples(), &[0.0, 0.0]);
    }

    #[test]
    fn peak_mean_percentile() {
        let t = Trace::from_samples(cal(), vec![1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(t.peak(), 4.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.percentile(100.0), 4.0);
        assert_eq!(t.percentile(0.0), 1.0);
    }

    #[test]
    fn capped_and_scaled() {
        let t = Trace::from_samples(cal(), vec![1.0, 5.0, 3.0]).unwrap();
        assert_eq!(t.capped(3.0).unwrap().samples(), &[1.0, 3.0, 3.0]);
        assert_eq!(t.scaled(2.0).unwrap().samples(), &[2.0, 10.0, 6.0]);
        assert!(t.scaled(-1.0).is_err());
    }

    #[test]
    fn checked_add_requires_alignment() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![3.0, 4.0]).unwrap();
        let c = Trace::from_samples(cal(), vec![1.0]).unwrap();
        assert_eq!(a.checked_add(&b).unwrap().samples(), &[4.0, 6.0]);
        assert!(matches!(
            a.checked_add(&c),
            Err(TraceError::Misaligned { .. })
        ));
    }

    #[test]
    fn sum_of_traces() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![0.5, 0.5]).unwrap();
        let s = Trace::sum([&a, &b]).unwrap();
        assert_eq!(s.samples(), &[1.5, 2.5]);
        let empty: [&Trace; 0] = [];
        assert_eq!(Trace::sum(empty), Err(TraceError::Empty));
    }

    #[test]
    fn whole_weeks_check() {
        let per_week = cal().slots_per_week();
        let whole = Trace::constant(cal(), 1.0, per_week * 2).unwrap();
        assert_eq!(whole.weeks(), 2);
        assert!(whole.require_whole_weeks().is_ok());
        let partial = Trace::constant(cal(), 1.0, per_week + 1).unwrap();
        assert_eq!(partial.weeks(), 1);
        assert!(matches!(
            partial.require_whole_weeks(),
            Err(TraceError::PartialWeek { .. })
        ));
    }

    #[test]
    fn week_slicing() {
        let per_week = cal().slots_per_week();
        let mut samples = vec![1.0; per_week];
        samples.extend(vec![2.0; per_week]);
        let t = Trace::from_samples(cal(), samples).unwrap();
        assert_eq!(t.week(0).unwrap()[0], 1.0);
        assert_eq!(t.week(1).unwrap()[0], 2.0);
        assert!(t.week(2).is_none());
    }

    #[test]
    fn weeks_range_extracts_whole_weeks() {
        let per_week = cal().slots_per_week();
        let mut samples = vec![1.0; per_week];
        samples.extend(vec![2.0; per_week]);
        samples.extend(vec![3.0; per_week]);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let middle = t.weeks_range(1, 2).unwrap();
        assert_eq!(middle.len(), per_week);
        assert_eq!(middle.samples()[0], 2.0);
        let tail = t.weeks_range(1, 3).unwrap();
        assert_eq!(tail.weeks(), 2);
        assert!(t.weeks_range(2, 2).is_none());
        assert!(t.weeks_range(0, 4).is_none());
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.fraction_above(2.0), 0.5);
        assert_eq!(t.fraction_above(4.0), 0.0);
        assert_eq!(t.fraction_above(0.0), 1.0);
    }

    #[test]
    fn normalized_percent_peaks_at_100() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0, 4.0]).unwrap();
        let n = t.normalized_percent();
        assert_eq!(n.samples(), &[25.0, 50.0, 100.0]);
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let t = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // Deserialization re-runs the invariant checks.
        let forged = json.replace("2.0", "-2.0");
        assert!(serde_json::from_str::<Trace>(&forged).is_err());
    }

    #[test]
    fn downsample_averages_chunks() {
        let fine = Trace::from_samples(cal(), vec![1.0, 3.0, 2.0, 4.0, 0.0, 2.0]).unwrap();
        // 5-minute -> 15-minute slots.
        let coarse = fine.downsample(3).unwrap();
        assert_eq!(coarse.samples(), &[2.0, 2.0]);
        assert_eq!(coarse.calendar().slot_minutes(), 15);
        // Identity factor.
        assert_eq!(fine.downsample(1).unwrap(), fine);
        // Length must divide.
        assert!(matches!(
            fine.downsample(4),
            Err(TraceError::Misaligned { .. })
        ));
        // Resulting slot length must divide a day (5 * 7 = 35 does not).
        let seven = Trace::constant(cal(), 1.0, 7).unwrap();
        assert!(matches!(
            seven.downsample(7),
            Err(TraceError::InvalidSlotLength { .. })
        ));
    }
}
