//! Summary statistics used throughout R-Opus.
//!
//! The percentile definition matches what the paper relies on for `D_M%`
//! (the `M`-th percentile of workload demand): linear interpolation between
//! order statistics, with `percentile(_, 100)` equal to the maximum.

use serde::{Deserialize, Serialize};

use crate::kernels;

/// Arithmetic mean; 0 for an empty slice. Lane-chunked: see
/// [`kernels::mean`] for the fixed accumulation order.
pub fn mean(samples: &[f64]) -> f64 {
    kernels::mean(samples)
}

/// Population variance; 0 for slices shorter than 2. Lane-chunked: see
/// [`kernels::variance`] for the fixed accumulation order.
pub fn variance(samples: &[f64]) -> f64 {
    kernels::variance(samples)
}

/// Population standard deviation.
pub fn std_dev(samples: &[f64]) -> f64 {
    variance(samples).sqrt()
}

/// Coefficient of variation (`σ/µ`); 0 when the mean is 0.
pub fn coefficient_of_variation(samples: &[f64]) -> f64 {
    let m = mean(samples);
    if m == 0.0 {
        0.0
    } else {
        std_dev(samples) / m
    }
}

/// The `q`-th percentile with linear interpolation between order statistics.
///
/// `percentile(s, 100)` is `max(s)` and `percentile(s, 0)` is `min(s)`.
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `q` is NaN or outside `[0, 100]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    percentile_of_sorted(&kernels::sorted(samples), q)
}

/// Percentile of an already ascending-sorted slice; avoids re-sorting when
/// many percentiles of the same data are needed (e.g. the Fig. 6 sweep).
///
/// # Panics
///
/// Panics if `q` is NaN or outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    // rank lies in [0, len-1], so both ranks are in bounds; get() keeps
    // the lookup panic-free regardless.
    let value_at = |i: usize| sorted.get(i).copied().unwrap_or(0.0);
    if lo == hi {
        value_at(lo)
    } else {
        let weight = rank - lo as f64;
        value_at(lo) * (1.0 - weight) + value_at(hi) * weight
    }
}

/// The `q`-th percentile with *upper nearest-rank* semantics:
/// `sorted[ceil(q/100 · (n−1))]`.
///
/// Unlike the interpolating [`percentile`], this value guarantees that at
/// most `1 − q/100` of the samples are strictly greater — the property the
/// R-Opus `M_degr` demand cap needs ("for at least `M%` of measurements,
/// utilization of allocation is within the desirable range").
///
/// # Panics
///
/// Panics if `q` is NaN or outside `[0, 100]`.
pub fn percentile_upper(samples: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    percentile_upper_of_sorted(&kernels::sorted(samples), q)
}

/// Upper nearest-rank percentile of an already ascending-sorted slice;
/// the cached-sort companion of [`percentile_upper`], mirroring
/// [`percentile_of_sorted`].
///
/// # Panics
///
/// Panics if `q` is NaN or outside `[0, 100]`.
pub fn percentile_upper_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).ceil() as usize;
    sorted
        .get(rank.min(sorted.len() - 1))
        .copied()
        .unwrap_or(0.0)
}

/// Pearson correlation of two equally long series; 0 when undefined
/// (length mismatch, fewer than two points, or a constant series).
///
/// Used to validate the generator's cross-attribute structure (memory
/// footprints must track CPU demand) and as the measurement behind the
/// correlation-aware placement heuristic.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Lag-`k` autocorrelation; 0 when undefined (constant series or `k >= len`).
pub fn autocorrelation(samples: &[f64], lag: usize) -> f64 {
    if lag >= samples.len() {
        return 0.0;
    }
    let m = mean(samples);
    let denom: f64 = samples.iter().map(|v| (v - m) * (v - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let numer: f64 = samples
        .iter()
        .zip(samples.iter().skip(lag))
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    numer / denom
}

/// One-pass summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a slice; all fields are 0 for an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        Summary {
            count: samples.len(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(samples),
            std_dev: std_dev(samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
        assert_eq!(std_dev(&[2.0, 4.0]), 1.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        let cv = coefficient_of_variation(&[2.0, 4.0]);
        assert!((cv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 50.0), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [10.0, 20.0];
        assert_eq!(percentile(&s, 25.0), 12.5);
        assert_eq!(percentile(&s, 75.0), 17.5);
    }

    #[test]
    fn percentile_of_single_sample() {
        assert_eq!(percentile(&[7.0], 30.0), 7.0);
        assert_eq!(percentile(&[], 30.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentile_of_sorted_matches_percentile() {
        let s = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut sorted = s.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 10.0, 33.3, 50.0, 90.0, 97.0, 99.9, 100.0] {
            assert_eq!(percentile(&s, q), percentile_of_sorted(&sorted, q));
        }
    }

    #[test]
    fn percentile_upper_bounds_fraction_above() {
        // 162 zeros then 6 large values: the interpolating percentile sits
        // between the groups, leaving 6/168 > 3% of samples above it; the
        // upper nearest-rank value leaves exactly 5/168 < 3%.
        let mut samples = vec![0.0; 162];
        samples.extend([15.9, 17.9, 18.7, 19.1, 19.5, 19.7]);
        let p = percentile_upper(&samples, 97.0);
        assert_eq!(p, 15.9);
        let above = samples.iter().filter(|&&v| v > p).count();
        assert!(above as f64 / samples.len() as f64 <= 0.03);
        assert!(percentile(&samples, 97.0) < p);
    }

    #[test]
    fn percentile_upper_edges() {
        assert_eq!(percentile_upper(&[], 50.0), 0.0);
        assert_eq!(percentile_upper(&[7.0], 30.0), 7.0);
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_upper(&s, 0.0), 1.0);
        assert_eq!(percentile_upper(&s, 100.0), 4.0);
        // Any fractional rank rounds up.
        assert_eq!(percentile_upper(&s, 50.0), 3.0);
    }

    #[test]
    fn correlation_of_linear_series() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let inverted = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&a, &inverted) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(
            correlation(&a, &b[..2]),
            0.0,
            "length mismatch is undefined"
        );
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let s = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&s, 1) < -0.5);
        assert_eq!(autocorrelation(&s, 10), 0.0);
        assert_eq!(autocorrelation(&[3.0, 3.0, 3.0], 1), 0.0);
    }

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
    }
}
