use serde::{Deserialize, Serialize};

use super::{generate, BurstModel, WorkloadProfile};
use crate::rng::Rng;
use crate::{Calendar, Trace};

/// One application of the case-study fleet: a name plus its demand trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppWorkload {
    /// Application name (`app-01` .. `app-26` for the default fleet).
    pub name: String,
    /// The generated demand trace in CPUs.
    pub trace: Trace,
}

/// Configuration of the synthetic case-study fleet.
///
/// The defaults mirror the paper's §VII setup: 26 applications, four weeks
/// of 5-minute CPU demand observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master seed; the fleet is a pure function of this value.
    pub seed: u64,
    /// Number of applications (default 26).
    pub apps: usize,
    /// Number of whole weeks of history (default 4).
    pub weeks: usize,
    /// Observation calendar (default 5-minute slots).
    pub calendar: Calendar,
}

impl FleetConfig {
    /// The paper's case-study shape: 26 apps, 4 weeks, 5-minute sampling.
    pub fn paper() -> Self {
        FleetConfig {
            seed: 0x0DE5_2006,
            apps: 26,
            weeks: 4,
            calendar: Calendar::five_minute(),
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Generates the synthetic stand-in for the paper's 26-application
/// order-entry fleet.
///
/// Population structure, chosen to reproduce the Fig. 6 characterization:
///
/// * apps 1–2: *extreme* burst processes — a small share of observations
///   ~10x the body of the distribution;
/// * apps 3–10: *moderate* burst processes — top 3% of demand 2–10x the
///   remaining observations;
/// * apps 11–26: smooth diurnal workloads of varied scale and amplitude.
///
/// # Example
///
/// ```
/// use ropus_trace::gen::{case_study_fleet, FleetConfig};
///
/// let fleet = case_study_fleet(&FleetConfig::paper());
/// assert_eq!(fleet.len(), 26);
/// assert!(fleet.iter().all(|app| app.trace.weeks() == 4));
/// ```
pub fn case_study_fleet(config: &FleetConfig) -> Vec<AppWorkload> {
    assert!(
        config.apps > 0,
        "fleet must contain at least one application"
    );
    let root = Rng::seed_from_u64(config.seed);
    (0..config.apps)
        .map(|i| {
            let profile = profile_for(i, &root);
            let mut rng = root.fork(1000 + i as u64);
            let trace = generate(&profile, config.calendar, config.weeks, &mut rng);
            AppWorkload {
                name: profile.name().to_string(),
                trace,
            }
        })
        .collect()
}

/// Deterministic per-application profile parameters.
fn profile_for(index: usize, root: &Rng) -> WorkloadProfile {
    // Draw stable per-app parameter jitter from a dedicated substream so the
    // profile of app i never depends on how many apps exist.
    let mut params = root.fork(index as u64);
    let name = format!("app-{:02}", index + 1);

    // Demand scales are chosen so that, as in the paper's fleet, every
    // application's peak *allocation* (2x its peak demand under the
    // case-study burst factor) fits a 16-way server, and the 26-app C_peak
    // lands on the order of a couple of hundred CPUs. Bursty applications
    // get small bodies so their spikes are large *relative* to the rest of
    // their demand (the Fig. 6 shape) while staying server-sized.
    let amplitude = params.uniform(0.8, 1.6);
    let weekend = params.uniform(0.2, 0.55);
    let mean = match index {
        0 | 1 => params.uniform(0.3, 0.5),
        2..=9 => params.uniform(0.4, 1.0),
        _ => params.uniform(0.7, 2.5),
    };
    // Staggered business peaks: different applications serve different
    // user communities (and time zones), so their daily maxima do not
    // coincide — the diversity that makes statistical multiplexing pay.
    let morning = params.uniform(8.5, 12.0);
    let afternoon = params.uniform(13.0, 17.0);

    let builder = WorkloadProfile::builder(name)
        .mean_demand(mean)
        .diurnal_amplitude(amplitude)
        .weekend_factor(weekend)
        .curve(super::DiurnalCurve::with_peaks(morning, afternoon));

    match index {
        0 | 1 => builder
            .noise_cv(params.uniform(0.25, 0.4))
            .burst(BurstModel::extreme())
            .build(),
        2..=9 => builder
            .noise_cv(params.uniform(0.25, 0.4))
            .burst(BurstModel::moderate())
            .build(),
        _ => builder.noise_cv(params.uniform(0.06, 0.15)).build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_fleet() -> Vec<AppWorkload> {
        case_study_fleet(&FleetConfig {
            weeks: 2,
            ..FleetConfig::paper()
        })
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = small_fleet();
        let b = small_fleet();
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_has_unique_names_and_positive_demand() {
        let fleet = small_fleet();
        let mut names: Vec<&str> = fleet.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fleet.len());
        for app in &fleet {
            assert!(app.trace.peak() > 0.0, "{} has zero demand", app.name);
        }
    }

    #[test]
    fn adding_apps_does_not_change_existing_traces() {
        let base = case_study_fleet(&FleetConfig {
            apps: 5,
            weeks: 1,
            ..FleetConfig::paper()
        });
        let bigger = case_study_fleet(&FleetConfig {
            apps: 8,
            weeks: 1,
            ..FleetConfig::paper()
        });
        for (a, b) in base.iter().zip(bigger.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bursty_apps_have_heavier_tails_than_smooth_apps() {
        let fleet = case_study_fleet(&FleetConfig::paper());
        // Ratio of peak to 97th percentile, the Fig. 6 signature.
        let tail_ratio = |t: &Trace| t.peak() / t.percentile(97.0);
        let bursty: Vec<f64> = fleet[..10].iter().map(|a| tail_ratio(&a.trace)).collect();
        let smooth: Vec<f64> = fleet[10..].iter().map(|a| tail_ratio(&a.trace)).collect();
        assert!(
            stats::mean(&bursty) > 1.5 * stats::mean(&smooth),
            "bursty {:?} vs smooth {:?}",
            stats::mean(&bursty),
            stats::mean(&smooth)
        );
        // The two extreme apps should show very large spikes.
        assert!(
            bursty[0] > 2.0 || bursty[1] > 2.0,
            "extreme apps should spike: {bursty:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_fleet_rejected() {
        case_study_fleet(&FleetConfig {
            apps: 0,
            ..FleetConfig::paper()
        });
    }
}
