use serde::{Deserialize, Serialize};

use crate::rng::Rng;
use crate::Trace;

/// Model of an application's memory footprint, the second capacity
/// attribute (§II of the paper lists CPU, memory, and I/O; §IX defers
/// multi-attribute sharing to future work).
///
/// Memory behaves very differently from CPU demand: a resident set has a
/// static base (code, caches, connection pools) plus a demand-following
/// component that grows quickly under load but drains slowly (heaps and
/// caches are sticky). The model is
///
/// `mem(t) = (base_gb + per_cpu_gb · s(t)) · noise`,
///
/// where `s(t)` follows the CPU demand with an asymmetric exponential
/// smoother: fast on the way up, slow on the way down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Static resident set in GB.
    pub base_gb: f64,
    /// Demand-following component: GB per CPU of (smoothed) demand.
    pub per_cpu_gb: f64,
    /// Smoothing weight applied when demand rises (fast, e.g. 0.5).
    pub rise_alpha: f64,
    /// Smoothing weight applied when demand falls (slow, e.g. 0.02).
    pub fall_alpha: f64,
    /// CV of the small multiplicative noise on the footprint.
    pub noise_cv: f64,
}

impl MemoryModel {
    /// A typical enterprise-application footprint: 2 GB base plus 3 GB per
    /// CPU of sustained demand.
    pub fn typical() -> Self {
        MemoryModel {
            base_gb: 2.0,
            per_cpu_gb: 3.0,
            rise_alpha: 0.5,
            fall_alpha: 0.02,
            noise_cv: 0.02,
        }
    }

    /// Generates the footprint trace driven by a CPU demand trace.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are negative or the alphas are
    /// outside `[0, 1]`.
    pub fn generate(&self, cpu_demand: &Trace, rng: &mut Rng) -> Trace {
        assert!(
            self.base_gb >= 0.0 && self.per_cpu_gb >= 0.0,
            "sizes must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.rise_alpha) && (0.0..=1.0).contains(&self.fall_alpha),
            "alphas must be in [0, 1]"
        );
        let mut smoothed = 0.0f64;
        let samples: Vec<f64> = cpu_demand
            .iter()
            .map(|d| {
                let alpha = if d > smoothed {
                    self.rise_alpha
                } else {
                    self.fall_alpha
                };
                smoothed += alpha * (d - smoothed);
                (self.base_gb + self.per_cpu_gb * smoothed) * rng.lognormal_unit_mean(self.noise_cv)
            })
            .collect();
        Trace::from_samples(cpu_demand.calendar(), samples)
            // lint:allow(panic-expect): base/per-cpu terms are validated
            // non-negative and lognormal noise is positive and finite.
            .expect("memory model emits finite non-negative samples")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    #[test]
    fn footprint_tracks_demand_with_sticky_decay() {
        // Demand: quiet, spike, quiet again.
        let mut demand = vec![0.5; 200];
        demand[50..60].fill(4.0);
        let demand = Trace::from_samples(cal(), demand).unwrap();
        let model = MemoryModel {
            noise_cv: 0.0,
            ..MemoryModel::typical()
        };
        let mem = model.generate(&demand, &mut Rng::seed_from_u64(1));

        // Before the spike: near base + per_cpu * 0.5.
        let before = mem.samples()[49];
        assert!((before - (2.0 + 3.0 * 0.5)).abs() < 0.3, "before {before}");
        // During the spike the footprint climbs fast.
        let during = mem.samples()[59];
        assert!(during > 10.0, "during {during}");
        // Long after the spike it has barely drained (sticky).
        let after = mem.samples()[80];
        assert!(after > 0.5 * during, "after {after} vs during {during}");
        // But it does decay monotonically once demand drops.
        assert!(mem.samples()[199] < after);
    }

    #[test]
    fn base_only_model_is_flat() {
        let demand = Trace::constant(cal(), 0.0, 50).unwrap();
        let model = MemoryModel {
            base_gb: 8.0,
            per_cpu_gb: 0.0,
            noise_cv: 0.0,
            ..MemoryModel::typical()
        };
        let mem = model.generate(&demand, &mut Rng::seed_from_u64(0));
        assert!(mem.iter().all(|v| (v - 8.0).abs() < 1e-12));
    }

    #[test]
    fn footprint_correlates_with_smoothed_demand() {
        use super::super::{generate, WorkloadProfile};
        let profile = WorkloadProfile::builder("x").mean_demand(2.0).build();
        let demand = generate(&profile, cal(), 1, &mut Rng::seed_from_u64(3));
        let model = MemoryModel::typical();
        let mem = model.generate(&demand, &mut Rng::seed_from_u64(4));
        let r = crate::stats::correlation(demand.samples(), mem.samples());
        // The footprint follows demand (through the asymmetric smoother),
        // so the correlation is strongly positive but below 1.
        assert!(r > 0.5 && r < 1.0, "correlation {r}");
    }

    #[test]
    fn generation_is_deterministic() {
        let demand = Trace::constant(cal(), 1.0, 100).unwrap();
        let model = MemoryModel::typical();
        let a = model.generate(&demand, &mut Rng::seed_from_u64(9));
        let b = model.generate(&demand, &mut Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "alphas must be in [0, 1]")]
    fn rejects_bad_alpha() {
        let demand = Trace::constant(cal(), 1.0, 10).unwrap();
        let model = MemoryModel {
            rise_alpha: 1.5,
            ..MemoryModel::typical()
        };
        model.generate(&demand, &mut Rng::seed_from_u64(0));
    }
}
