use serde::{Deserialize, Serialize};

/// A smooth time-of-day activity curve for interactive enterprise work.
///
/// The curve is a sum of two Gaussian bumps — a morning and an afternoon
/// peak — which naturally produces the mid-day "lunch dip" seen in
/// order-entry systems. Its value is normalized to `[0, 1]`, with the
/// daily maximum at 1.
///
/// # Example
///
/// ```
/// use ropus_trace::gen::DiurnalCurve;
///
/// let curve = DiurnalCurve::business_hours();
/// // 10:30 ≈ morning peak, 03:00 ≈ idle.
/// assert!(curve.value(10.5 / 24.0) > 0.9);
/// assert!(curve.value(3.0 / 24.0) < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    morning_peak_hour: f64,
    afternoon_peak_hour: f64,
    peak_width_hours: f64,
    afternoon_relative_height: f64,
    normalizer: f64,
}

impl DiurnalCurve {
    /// The default curve: peaks at 10:30 and 14:30, ~1.8 h wide, afternoon
    /// peak 95% of the morning one. The generous width gives the broad
    /// business-hours plateau typical of order-entry systems — several
    /// contiguous hours per weekday near the daily maximum, which is what
    /// makes the paper's time-limited-degradation constraint bite.
    pub fn business_hours() -> Self {
        Self::with_shape(10.5, 14.5, 1.8, 0.95)
    }

    /// A curve with custom peak hours; width and relative height keep the
    /// business-hours defaults.
    ///
    /// # Panics
    ///
    /// Panics if either hour is outside `[0, 24)`.
    pub fn with_peaks(morning_hour: f64, afternoon_hour: f64) -> Self {
        Self::with_shape(morning_hour, afternoon_hour, 1.8, 0.95)
    }

    /// A fully custom curve.
    ///
    /// # Panics
    ///
    /// Panics if a peak hour is outside `[0, 24)`, the width is not
    /// positive, or the relative height is negative.
    pub fn with_shape(
        morning_hour: f64,
        afternoon_hour: f64,
        width_hours: f64,
        afternoon_relative_height: f64,
    ) -> Self {
        assert!(
            (0.0..24.0).contains(&morning_hour),
            "morning hour out of range"
        );
        assert!(
            (0.0..24.0).contains(&afternoon_hour),
            "afternoon hour out of range"
        );
        assert!(width_hours > 0.0, "peak width must be positive");
        assert!(
            afternoon_relative_height >= 0.0,
            "relative height must be non-negative"
        );
        let mut curve = DiurnalCurve {
            morning_peak_hour: morning_hour,
            afternoon_peak_hour: afternoon_hour,
            peak_width_hours: width_hours,
            afternoon_relative_height,
            normalizer: 1.0,
        };
        // Scan the day at 1-minute resolution for the true maximum; the two
        // bumps overlap, so the maximum need not sit exactly on a peak hour.
        let max = (0..24 * 60)
            .map(|minute| curve.raw(minute as f64 / 60.0))
            .fold(f64::MIN, f64::max);
        curve.normalizer = max;
        curve
    }

    /// Curve value for a time-of-day fraction in `[0, 1)`; result in `[0, 1]`.
    pub fn value(&self, time_of_day_fraction: f64) -> f64 {
        let hour = time_of_day_fraction.rem_euclid(1.0) * 24.0;
        (self.raw(hour) / self.normalizer).min(1.0)
    }

    /// Unnormalized curve at an hour-of-day.
    fn raw(&self, hour: f64) -> f64 {
        self.bump(hour, self.morning_peak_hour)
            + self.afternoon_relative_height * self.bump(hour, self.afternoon_peak_hour)
    }

    /// Gaussian bump centred at `peak` hours, respecting day wrap-around.
    fn bump(&self, hour: f64, peak: f64) -> f64 {
        let direct = (hour - peak).abs();
        let wrapped = 24.0 - direct;
        let dist = direct.min(wrapped);
        (-0.5 * (dist / self.peak_width_hours).powi(2)).exp()
    }
}

impl Default for DiurnalCurve {
    fn default() -> Self {
        Self::business_hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_in_unit_interval() {
        let curve = DiurnalCurve::business_hours();
        for i in 0..288 {
            let v = curve.value(i as f64 / 288.0);
            assert!((0.0..=1.0).contains(&v), "value {v} at slot {i}");
        }
    }

    #[test]
    fn reaches_its_maximum() {
        let curve = DiurnalCurve::business_hours();
        let max = (0..1440)
            .map(|m| curve.value(m as f64 / 1440.0))
            .fold(f64::MIN, f64::max);
        assert!(max > 0.999, "normalized max {max}");
    }

    #[test]
    fn peaks_where_configured() {
        let curve = DiurnalCurve::business_hours();
        let morning = curve.value(10.5 / 24.0);
        let night = curve.value(2.0 / 24.0);
        let lunch = curve.value(12.5 / 24.0);
        assert!(morning > 0.9);
        assert!(night < 0.01);
        // Lunch dip: lower than the peaks but far from idle.
        assert!(
            lunch < morning && lunch > night,
            "lunch {lunch} morning {morning} night {night}"
        );
    }

    #[test]
    fn custom_peaks_move_the_maximum() {
        let curve = DiurnalCurve::with_peaks(8.0, 20.0);
        assert!(curve.value(8.0 / 24.0) > curve.value(12.0 / 24.0));
        assert!(curve.value(20.0 / 24.0) > curve.value(12.0 / 24.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_peak() {
        DiurnalCurve::with_peaks(25.0, 14.0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        DiurnalCurve::with_shape(9.0, 15.0, 0.0, 0.9);
    }

    #[test]
    fn wraps_around_midnight() {
        let curve = DiurnalCurve::with_peaks(23.5, 12.0);
        // 00:30 is one hour from the 23:30 peak through midnight.
        assert!(curve.value(0.5 / 24.0) > 0.7);
    }
}
