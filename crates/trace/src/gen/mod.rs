//! Synthetic enterprise workload generation.
//!
//! The paper's case study uses four weeks of proprietary CPU demand traces
//! from 26 applications of a large enterprise order-entry system. Those
//! traces are not available, so this module builds the closest synthetic
//! equivalent: interactive enterprise workloads with
//!
//! * a *diurnal* business-hours pattern (morning and afternoon peaks with a
//!   lunch dip — the paper's "time of day captures the diurnal nature of
//!   interactive enterprise workloads");
//! * a weekly pattern (lighter weekends);
//! * multiplicative lognormal noise; and
//! * Pareto-magnitude, geometric-duration *burst episodes*, which produce
//!   the Fig. 6 signature where an application's top percentiles are
//!   2–10x its remaining demands.
//!
//! Everything is driven by the deterministic [`crate::rng::Rng`], so a
//! fleet is a pure function of its seed.

mod diurnal;
mod fleet;
mod memory;
mod profile;

pub use diurnal::DiurnalCurve;
pub use fleet::{case_study_fleet, AppWorkload, FleetConfig};
pub use memory::MemoryModel;
pub use profile::{BurstModel, WorkloadProfile, WorkloadProfileBuilder};

use crate::rng::Rng;
use crate::{Calendar, Trace};

/// Generates `weeks` whole weeks of demand for `profile` on `calendar`.
///
/// The generator is deterministic in `(profile, calendar, weeks, rng state)`.
///
/// # Example
///
/// ```
/// use ropus_trace::gen::{generate, WorkloadProfile};
/// use ropus_trace::rng::Rng;
/// use ropus_trace::Calendar;
///
/// let profile = WorkloadProfile::builder("app").mean_demand(2.0).build();
/// let trace = generate(&profile, Calendar::five_minute(), 2, &mut Rng::seed_from_u64(1));
/// assert_eq!(trace.weeks(), 2);
/// ```
pub fn generate(
    profile: &WorkloadProfile,
    calendar: Calendar,
    weeks: usize,
    rng: &mut Rng,
) -> Trace {
    assert!(weeks > 0, "at least one week of data is required");
    let total = calendar.slots_per_week() * weeks;
    let mut samples = Vec::with_capacity(total);

    // Remaining slots of an in-progress burst episode and its multiplier.
    let mut burst_left = 0usize;
    let mut burst_multiplier = 1.0f64;

    // AR(1) log-noise: busy excursions persist across slots, as real
    // 5-minute utilization samples do. The stationary distribution is
    // lognormal with unit mean and the profile's CV.
    let rho = profile.noise_correlation();
    let sigma2 = (1.0 + profile.noise_cv() * profile.noise_cv()).ln();
    let sigma = sigma2.sqrt();
    let innovation = (1.0 - rho * rho).sqrt();
    let mut log_noise = if sigma > 0.0 {
        rng.normal(0.0, sigma)
    } else {
        0.0
    };

    for index in 0..total {
        let tod = calendar.time_of_day_fraction(index);
        let day = calendar.day_of_week(index);

        let shape = profile.curve().value(tod);
        let mut level =
            profile.mean_demand() * (profile.base_fraction() + profile.diurnal_amplitude() * shape);
        if day.is_weekend() {
            level *= profile.weekend_factor();
        }
        if sigma > 0.0 {
            log_noise = rho * log_noise + innovation * rng.normal(0.0, sigma);
            level *= (log_noise - 0.5 * sigma2).exp();
        }

        if let Some(burst) = profile.burst() {
            if burst_left == 0 && rng.bernoulli(burst.start_probability) {
                burst_left = rng.geometric(1.0 / burst.mean_duration_slots.max(1) as f64);
                burst_multiplier = rng
                    .pareto(burst.magnitude_scale, burst.magnitude_alpha)
                    .min(burst.max_multiplier);
            }
            if burst_left > 0 {
                level *= burst_multiplier;
                burst_left -= 1;
            }
        }

        samples.push(level.max(0.0));
    }

    // lint:allow(panic-expect): every sample is clamped non-negative just
    // above and all profile arithmetic is finite, so validation holds.
    Trace::from_samples(calendar, samples).expect("generator emits finite non-negative samples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x").mean_demand(1.0).build();
        let t = generate(&p, cal, 3, &mut Rng::seed_from_u64(0));
        assert_eq!(t.len(), cal.slots_per_week() * 3);
        assert!(t.require_whole_weeks().is_ok());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x")
            .mean_demand(2.0)
            .noise_cv(0.4)
            .build();
        let a = generate(&p, cal, 1, &mut Rng::seed_from_u64(5));
        let b = generate(&p, cal, 1, &mut Rng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = generate(&p, cal, 1, &mut Rng::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn business_hours_exceed_night_on_average() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x")
            .mean_demand(2.0)
            .diurnal_amplitude(2.0)
            .noise_cv(0.1)
            .build();
        let t = generate(&p, cal, 2, &mut Rng::seed_from_u64(3));
        let per_day = cal.slots_per_day();
        let mut business = Vec::new();
        let mut night = Vec::new();
        for (i, v) in t.iter().enumerate() {
            if cal.day_of_week(i).is_weekend() {
                continue;
            }
            let slot = i % per_day;
            let hour = slot as f64 * 24.0 / per_day as f64;
            if (9.0..17.0).contains(&hour) {
                business.push(v);
            } else if !(7.0..20.0).contains(&hour) {
                night.push(v);
            }
        }
        let b = crate::stats::mean(&business);
        let n = crate::stats::mean(&night);
        assert!(
            b > 2.0 * n,
            "business mean {b} should dominate night mean {n}"
        );
    }

    #[test]
    fn weekends_are_lighter() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x")
            .mean_demand(2.0)
            .weekend_factor(0.2)
            .noise_cv(0.1)
            .build();
        let t = generate(&p, cal, 2, &mut Rng::seed_from_u64(4));
        let (mut wk, mut we) = (Vec::new(), Vec::new());
        for (i, v) in t.iter().enumerate() {
            if cal.day_of_week(i).is_weekend() {
                we.push(v);
            } else {
                wk.push(v);
            }
        }
        assert!(crate::stats::mean(&we) < 0.5 * crate::stats::mean(&wk));
    }

    #[test]
    fn bursty_profile_has_heavy_top_percentiles() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x")
            .mean_demand(1.0)
            .noise_cv(0.2)
            .burst(BurstModel {
                start_probability: 0.002,
                magnitude_scale: 3.0,
                magnitude_alpha: 1.2,
                mean_duration_slots: 3,
                max_multiplier: 15.0,
            })
            .build();
        let t = generate(&p, cal, 4, &mut Rng::seed_from_u64(11));
        let p97 = t.percentile(97.0);
        let peak = t.peak();
        assert!(
            peak > 2.0 * p97,
            "peak {peak} should dwarf the 97th percentile {p97}"
        );
    }

    #[test]
    fn smooth_profile_has_tame_tail() {
        let cal = Calendar::five_minute();
        let p = WorkloadProfile::builder("x")
            .mean_demand(1.0)
            .noise_cv(0.1)
            .build();
        let t = generate(&p, cal, 4, &mut Rng::seed_from_u64(12));
        assert!(t.peak() < 2.0 * t.percentile(97.0));
    }

    #[test]
    #[should_panic(expected = "at least one week")]
    fn zero_weeks_rejected() {
        let p = WorkloadProfile::builder("x").build();
        generate(&p, Calendar::five_minute(), 0, &mut Rng::seed_from_u64(0));
    }
}
