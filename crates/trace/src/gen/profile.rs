use serde::{Deserialize, Serialize};

use super::DiurnalCurve;

/// Parameters of a burst-episode process layered on top of the smooth
/// demand level.
///
/// When an episode starts, the level is multiplied by a Pareto-distributed
/// factor for a geometrically distributed number of slots. This is what
/// gives the heavy top percentiles of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstModel {
    /// Probability that a new episode starts at any slot not already in one.
    pub start_probability: f64,
    /// Pareto scale (minimum multiplier) of the episode magnitude.
    pub magnitude_scale: f64,
    /// Pareto shape; smaller values give heavier tails.
    pub magnitude_alpha: f64,
    /// Mean episode duration in slots (geometric distribution).
    pub mean_duration_slots: usize,
    /// Hard cap on the multiplier, bounding physically implausible spikes.
    pub max_multiplier: f64,
}

impl BurstModel {
    /// A moderate burst process: ~0.2% of slots start an episode that is
    /// 1.8x or more for ~3 slots, capped at 4.5x.
    pub fn moderate() -> Self {
        BurstModel {
            start_probability: 0.002,
            magnitude_scale: 1.8,
            magnitude_alpha: 1.4,
            mean_duration_slots: 3,
            max_multiplier: 4.5,
        }
    }

    /// A rare-but-extreme burst process: ~0.05% of slots start an episode
    /// of 3x or more, capped at 8x — the two leftmost applications of
    /// Fig. 6 whose top 0.1% of demand is ~10x the body (the bursts hit
    /// small-bodied workloads, so the *relative* spike is large even
    /// though the absolute demand stays server-sized).
    pub fn extreme() -> Self {
        BurstModel {
            start_probability: 0.0005,
            magnitude_scale: 3.0,
            magnitude_alpha: 1.1,
            mean_duration_slots: 2,
            max_multiplier: 8.0,
        }
    }
}

/// Full description of one synthetic application workload.
///
/// Construct with [`WorkloadProfile::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    mean_demand: f64,
    base_fraction: f64,
    diurnal_amplitude: f64,
    curve: DiurnalCurve,
    weekend_factor: f64,
    noise_cv: f64,
    noise_correlation: f64,
    burst: Option<BurstModel>,
}

impl WorkloadProfile {
    /// Starts building a profile for the application called `name`.
    pub fn builder(name: impl Into<String>) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                mean_demand: 1.0,
                base_fraction: 0.25,
                diurnal_amplitude: 1.0,
                curve: DiurnalCurve::business_hours(),
                weekend_factor: 0.35,
                noise_cv: 0.25,
                noise_correlation: 0.8,
                burst: None,
            },
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Demand scale in CPUs; the business-hours level is roughly
    /// `mean_demand * (base_fraction + diurnal_amplitude)`.
    pub fn mean_demand(&self) -> f64 {
        self.mean_demand
    }

    /// Always-on fraction of `mean_demand` (background load).
    pub fn base_fraction(&self) -> f64 {
        self.base_fraction
    }

    /// Strength of the diurnal pattern relative to `mean_demand`.
    pub fn diurnal_amplitude(&self) -> f64 {
        self.diurnal_amplitude
    }

    /// The time-of-day shape.
    pub fn curve(&self) -> &DiurnalCurve {
        &self.curve
    }

    /// Multiplier applied on Saturdays and Sundays.
    pub fn weekend_factor(&self) -> f64 {
        self.weekend_factor
    }

    /// Coefficient of variation of the multiplicative lognormal noise.
    pub fn noise_cv(&self) -> f64 {
        self.noise_cv
    }

    /// Lag-1 autocorrelation of the log-noise process in `[0, 1)`.
    ///
    /// Real 5-minute utilization samples are strongly correlated — busy
    /// periods persist for tens of minutes. At 0 the noise is independent
    /// per slot; at 0.9 excursions have a time constant of roughly 50
    /// minutes, which is what lets the paper's `T_degr` constraint bite.
    pub fn noise_correlation(&self) -> f64 {
        self.noise_correlation
    }

    /// The burst process, if any.
    pub fn burst(&self) -> Option<&BurstModel> {
        self.burst.as_ref()
    }
}

/// Builder for [`WorkloadProfile`]; see [`WorkloadProfile::builder`].
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Sets the demand scale in CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is negative or non-finite.
    pub fn mean_demand(mut self, cpus: f64) -> Self {
        assert!(
            cpus.is_finite() && cpus >= 0.0,
            "mean demand must be finite and non-negative"
        );
        self.profile.mean_demand = cpus;
        self
    }

    /// Sets the always-on background fraction (default 0.25).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or non-finite.
    pub fn base_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "base fraction must be finite and non-negative"
        );
        self.profile.base_fraction = fraction;
        self
    }

    /// Sets the diurnal amplitude (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or non-finite.
    pub fn diurnal_amplitude(mut self, amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be finite and non-negative"
        );
        self.profile.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the time-of-day shape (default [`DiurnalCurve::business_hours`]).
    pub fn curve(mut self, curve: DiurnalCurve) -> Self {
        self.profile.curve = curve;
        self
    }

    /// Sets the weekend multiplier (default 0.35).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn weekend_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "weekend factor must be finite and non-negative"
        );
        self.profile.weekend_factor = factor;
        self
    }

    /// Sets the multiplicative noise CV (default 0.25).
    ///
    /// # Panics
    ///
    /// Panics if `cv` is negative or non-finite.
    pub fn noise_cv(mut self, cv: f64) -> Self {
        assert!(
            cv.is_finite() && cv >= 0.0,
            "noise cv must be finite and non-negative"
        );
        self.profile.noise_cv = cv;
        self
    }

    /// Sets the lag-1 autocorrelation of the log-noise process
    /// (default 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1)`.
    pub fn noise_correlation(mut self, rho: f64) -> Self {
        assert!(
            rho.is_finite() && (0.0..1.0).contains(&rho),
            "correlation must be in [0, 1)"
        );
        self.profile.noise_correlation = rho;
        self
    }

    /// Adds a burst process (default none).
    pub fn burst(mut self, burst: BurstModel) -> Self {
        self.profile.burst = Some(burst);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> WorkloadProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sensible() {
        let p = WorkloadProfile::builder("a").build();
        assert_eq!(p.name(), "a");
        assert_eq!(p.mean_demand(), 1.0);
        assert!(p.burst().is_none());
        assert!(p.weekend_factor() < 1.0);
    }

    #[test]
    fn builder_sets_all_fields() {
        let p = WorkloadProfile::builder("b")
            .mean_demand(3.0)
            .base_fraction(0.1)
            .diurnal_amplitude(2.0)
            .weekend_factor(0.5)
            .noise_cv(0.4)
            .noise_correlation(0.9)
            .burst(BurstModel::moderate())
            .curve(DiurnalCurve::with_peaks(9.0, 16.0))
            .build();
        assert_eq!(p.mean_demand(), 3.0);
        assert_eq!(p.base_fraction(), 0.1);
        assert_eq!(p.diurnal_amplitude(), 2.0);
        assert_eq!(p.weekend_factor(), 0.5);
        assert_eq!(p.noise_cv(), 0.4);
        assert_eq!(p.noise_correlation(), 0.9);
        assert!(p.burst().is_some());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn builder_rejects_negative_demand() {
        WorkloadProfile::builder("c").mean_demand(-1.0);
    }

    #[test]
    fn preset_burst_models_are_ordered() {
        let m = BurstModel::moderate();
        let e = BurstModel::extreme();
        assert!(e.magnitude_scale > m.magnitude_scale);
        assert!(e.start_probability < m.start_probability);
        assert!(e.max_multiplier > m.max_multiplier);
    }
}
