//! Chunked, auto-vectorizable slot kernels.
//!
//! Every hot loop over demand slots funnels through this module so the
//! codebase has exactly one place where the floating-point association of
//! each operation is pinned down. Two families live here:
//!
//! * **Element-wise kernels** (`add_assign`, `sub_saturating`, `cap_scale`,
//!   `split_cos`, …) — each output slot depends on one input slot, so the
//!   loop carries no dependency and LLVM vectorizes the plain `zip` form.
//!   These are *bit-identical* to the obvious scalar loop by construction:
//!   chunking independent elements never reassociates anything.
//! * **Reduction kernels** (`sum`, `mean`, `variance`) — a strict
//!   left-to-right `f64` fold cannot be vectorized, so these use a fixed
//!   [`LANES`]-wide accumulation whose association is part of the kernel's
//!   *definition*: lane `j` sums slots `j, j+LANES, j+2·LANES, …`, the lane
//!   totals combine pairwise, and the trailing remainder folds in last.
//!   The association depends only on the input length — never on threads,
//!   chunk scheduling, or platform — so results are deterministic and
//!   reproducible everywhere.
//!
//! The sorting kernel [`sorted`] is the single sanctioned
//! sample-buffer copy for order statistics; [`Trace`](crate::Trace) callers
//! should prefer the cached [`Trace::sorted_samples`](crate::Trace::sorted_samples)
//! view, which pays this copy once per window.

/// Number of independent accumulator lanes used by the reduction kernels.
///
/// Part of the kernel definition: changing it changes results (by ulps) and
/// invalidates recorded experiment numbers.
pub const LANES: usize = 4;

/// Element-wise `acc[i] += xs[i]` over the common prefix of the slices.
///
/// This is the aggregation primitive: summing a fleet column into a
/// per-slot total. Accumulating columns one at a time keeps the per-slot
/// association identical to the scalar reference loop
/// (`for each column c { for each slot i { acc[i] += c[i] } }`).
pub fn add_assign(acc: &mut [f64], xs: &[f64]) {
    debug_assert_eq!(acc.len(), xs.len(), "kernel operands must be aligned");
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += x;
    }
}

/// Element-wise `out[i] = a[i] - b[i]`, clamped at zero.
///
/// Used for unmet-demand computation (`demand - served`); the clamp keeps
/// results valid trace samples when `b` exceeds `a` by rounding.
pub fn sub_saturating_into(out: &mut Vec<f64>, a: &[f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "kernel operands must be aligned");
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| (x - y).max(0.0)));
}

/// Element-wise `out[i] = min(xs[i], cap) * factor`.
///
/// The fused form of the translation's demand cap followed by the burst
/// scale. `min` is exact, so the fusion is bit-identical to capping into a
/// temporary and scaling it afterwards.
pub fn cap_scale_into(out: &mut Vec<f64>, xs: &[f64], cap: f64, factor: f64) {
    out.clear();
    out.extend(xs.iter().map(|&v| v.min(cap) * factor));
}

/// Element-wise CoS split of a demand column (translation inner loop).
///
/// For each slot: `capped = min(d, cap)`, `cos1 = min(capped, p · cap)`,
/// `cos2 = capped − cos1`, both scaled by `factor`. This reproduces
/// `portfolio::split_demand` exactly, slot by slot, so the columnar
/// translation is bit-identical to the per-sample scalar path.
pub fn split_cos_into(
    demand: &[f64],
    p: f64,
    cap: f64,
    factor: f64,
    cos1_out: &mut Vec<f64>,
    cos2_out: &mut Vec<f64>,
) {
    cos1_out.clear();
    cos2_out.clear();
    cos1_out.reserve(demand.len());
    cos2_out.reserve(demand.len());
    let split_at = p * cap;
    for &d in demand {
        let capped = d.min(cap);
        let cos1 = capped.min(split_at);
        let cos2 = capped - cos1;
        cos1_out.push(cos1 * factor);
        cos2_out.push(cos2 * factor);
    }
}

/// Ascending sort of a sample slice into a fresh buffer (`total_cmp`
/// order), the shared primitive behind every percentile query.
///
/// This is the one deliberate O(len) copy in the statistics path: order
/// statistics need owned, mutable storage. [`Trace`](crate::Trace) caches
/// the result per window so repeated percentile queries pay it once.
pub fn sorted(values: &[f64]) -> Vec<f64> {
    let mut owned = values.to_vec();
    owned.sort_by(f64::total_cmp);
    owned
}

/// Upper nearest-rank percentile by quickselect: the one-shot companion
/// of the sorted-cache path, returning `sorted[ceil(q/100 · (n−1))]`
/// without sorting. The k-th order statistic under `total_cmp` is a fixed
/// element of the sample multiset whatever algorithm finds it, so this is
/// bit-identical to sorting first — in O(len) instead of O(len log len),
/// and without materializing a per-trace sorted cache. `scratch` is
/// clobbered (and reused across calls by hot translation loops).
///
/// # Panics
///
/// Panics if `q` is NaN or outside `[0, 100]`.
pub fn percentile_upper_select(samples: &[f64], q: f64, scratch: &mut Vec<f64>) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    if samples.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * (samples.len() - 1) as f64).ceil() as usize;
    let rank = rank.min(samples.len() - 1);
    scratch.clear();
    scratch.extend_from_slice(samples);
    let (_, value, _) = scratch.select_nth_unstable_by(rank, f64::total_cmp);
    *value
}

/// Lane-chunked sum with the fixed association documented at the module
/// level. Returns 0 for an empty slice.
pub fn sum(values: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let chunks = values.chunks_exact(LANES);
    let remainder = chunks.remainder();
    for chunk in chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane += v;
        }
    }
    let mut tail = 0.0;
    for &v in remainder {
        tail += v;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Lane-chunked arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    sum(values) / values.len() as f64
}

/// Lane-chunked population variance; 0 for slices shorter than 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let mut lanes = [0.0f64; LANES];
    let chunks = values.chunks_exact(LANES);
    let remainder = chunks.remainder();
    for chunk in chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane += (v - m) * (v - m);
        }
    }
    let mut tail = 0.0;
    for &v in remainder {
        tail += (v - m) * (v - m);
    }
    (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail) / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_matches_scalar_reference() {
        let mut acc = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let xs = [0.5, 0.25, 0.125, 0.0625, 0.03125];
        let mut reference = acc.clone();
        for (r, &x) in reference.iter_mut().zip(&xs) {
            *r += x;
        }
        add_assign(&mut acc, &xs);
        assert_eq!(acc, reference);
    }

    #[test]
    fn sub_saturating_clamps_at_zero() {
        let mut out = Vec::new();
        sub_saturating_into(&mut out, &[3.0, 1.0, 2.0], &[1.0, 2.0, 2.0]);
        assert_eq!(out, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn cap_scale_fuses_exactly() {
        let xs = [1.0, 5.0, 3.0, 0.7];
        let mut fused = Vec::new();
        cap_scale_into(&mut fused, &xs, 3.0, 1.25);
        let reference: Vec<f64> = xs.iter().map(|&v| v.min(3.0)).map(|v| v * 1.25).collect();
        assert_eq!(fused, reference);
    }

    #[test]
    fn split_cos_conserves_capped_demand() {
        let demand = [0.0, 1.0, 2.0, 5.0, 10.0];
        let (p, cap, factor) = (0.4, 4.0, 1.5);
        let mut cos1 = Vec::new();
        let mut cos2 = Vec::new();
        split_cos_into(&demand, p, cap, factor, &mut cos1, &mut cos2);
        for ((&d, &c1), &c2) in demand.iter().zip(&cos1).zip(&cos2) {
            let capped = d.min(cap);
            assert!((c1 + c2 - capped * factor).abs() < 1e-12);
            assert!(c1 <= p * cap * factor + 1e-12);
        }
    }

    #[test]
    fn sorted_is_ascending_and_total() {
        let s = sorted(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(s, vec![1.0, 1.0, 2.0, 3.0]);
        assert!(sorted(&[]).is_empty());
    }

    #[test]
    fn sum_matches_lane_definition() {
        // Scalar reference implementing the documented association.
        fn sum_ref(values: &[f64]) -> f64 {
            let full = values.len() - values.len() % LANES;
            let mut lanes = [0.0f64; LANES];
            for (i, &v) in values[..full].iter().enumerate() {
                lanes[i % LANES] += v;
            }
            let mut tail = 0.0;
            for &v in &values[full..] {
                tail += v;
            }
            ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
        }
        let values: Vec<f64> = (0..103)
            .map(|i| (i as f64) * 0.1 + 1e10 / (i + 1) as f64)
            .collect();
        assert_eq!(sum(&values), sum_ref(&values));
        assert_eq!(sum(&[]), 0.0);
        // Close to the naive fold as well.
        let naive: f64 = values.iter().sum();
        assert!((sum(&values) - naive).abs() / naive < 1e-12);
    }

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
    }
}
