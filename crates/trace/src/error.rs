use std::fmt;

/// Error raised when constructing or manipulating a [`Trace`](crate::Trace).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// The sample vector was empty.
    Empty,
    /// A sample was negative, NaN, or infinite.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The calendar's slot length does not divide a day evenly.
    InvalidSlotLength {
        /// The rejected slot length in minutes.
        minutes: u32,
    },
    /// Two traces that must share a calendar did not.
    CalendarMismatch {
        /// Slot length (minutes) of the left-hand trace's calendar.
        left: u32,
        /// Slot length (minutes) of the right-hand trace's calendar.
        right: u32,
    },
    /// Two traces that must share a calendar and length did not.
    Misaligned {
        /// Length of the left-hand trace.
        left: usize,
        /// Length of the right-hand trace.
        right: usize,
    },
    /// An operation required whole weeks of data but the trace has a
    /// partial trailing week.
    PartialWeek {
        /// Number of samples in the trace.
        len: usize,
        /// Samples per week required by the calendar.
        per_week: usize,
    },
    /// A malformed record was encountered while parsing trace data.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no samples"),
            TraceError::InvalidSample { index, value } => {
                write!(
                    f,
                    "sample {index} is not a finite non-negative value: {value}"
                )
            }
            TraceError::InvalidSlotLength { minutes } => {
                write!(
                    f,
                    "slot length of {minutes} minutes does not divide a day evenly"
                )
            }
            TraceError::CalendarMismatch { left, right } => {
                write!(
                    f,
                    "traces use different calendars: {left}-minute vs {right}-minute slots"
                )
            }
            TraceError::Misaligned { left, right } => {
                write!(
                    f,
                    "traces are misaligned: {left} samples vs {right} samples"
                )
            }
            TraceError::PartialWeek { len, per_week } => {
                write!(
                    f,
                    "trace of {len} samples is not a whole number of {per_week}-sample weeks"
                )
            }
            TraceError::Parse { line, message } => {
                write!(f, "malformed trace record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TraceError::Empty,
            TraceError::InvalidSample {
                index: 3,
                value: f64::NAN,
            },
            TraceError::InvalidSlotLength { minutes: 7 },
            TraceError::CalendarMismatch { left: 5, right: 60 },
            TraceError::Misaligned {
                left: 10,
                right: 12,
            },
            TraceError::PartialWeek {
                len: 5,
                per_week: 2016,
            },
            TraceError::Parse {
                line: 2,
                message: "bad float".to_string(),
            },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TraceError>();
    }
}
