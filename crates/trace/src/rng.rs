//! Deterministic, splittable pseudo-random number generation.
//!
//! R-Opus experiments must be bit-reproducible: the case-study fleet, the
//! genetic-algorithm search, and the recorded EXPERIMENTS.md numbers all
//! depend on the random stream. This module implements SplitMix64 (for
//! seeding and stream derivation) and Xoshiro256++ (for generation) from
//! their published reference algorithms, plus the distribution samplers the
//! workload generator needs (uniform, normal, lognormal, Pareto, Bernoulli,
//! geometric).

/// Xoshiro256++ generator seeded via SplitMix64.
///
/// # Example
///
/// ```
/// use ropus_trace::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: [u64; 4],
    cached_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose four state words are derived from `seed`
    /// with SplitMix64, the initialization recommended by the Xoshiro
    /// authors.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            cached_normal: None,
        }
    }

    /// Derives an independent generator for a named substream.
    ///
    /// Forking by stream id means adding a 27th application to the fleet
    /// does not perturb the traces of the existing 26.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the parent state down to a seed, then offset by the stream id
        // through another SplitMix64 round so nearby ids decorrelate.
        let mut sm =
            self.state[0] ^ self.state[2].rotate_left(17) ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            cached_normal: None,
        }
    }

    /// Next raw 64-bit output (Xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "invalid uniform range [{low}, {high})"
        );
        low + (high - low) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: retry to remove modulo bias.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate via the Marsaglia polar method (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal deviate parameterized by the *underlying* normal's `mu` and
    /// `sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal deviate with unit mean and the given coefficient of
    /// variation — the generator's multiplicative-noise workhorse.
    pub fn lognormal_unit_mean(&mut self, cv: f64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        self.lognormal(-0.5 * sigma2, sigma2.sqrt())
    }

    /// Pareto deviate with scale `x_m > 0` and shape `alpha > 0` (heavier
    /// tails for smaller `alpha`); models the demand spikes of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if `x_m <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(
            x_m > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        // Inverse CDF; 1 - U avoids ln(0).
        x_m / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Geometric deviate: number of Bernoulli(p) trials up to and including
    /// the first success (support `1, 2, ...`). Models burst durations.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> usize {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric probability must be in (0, 1]"
        );
        if p >= 1.0 {
            return 1;
        }
        let u = 1.0 - self.next_f64();
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chosen index-element pair, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<(usize, &'a T)> {
        if items.is_empty() {
            return None;
        }
        let i = self.below(items.len());
        items.get(i).map(|item| (i, item))
    }

    /// Samples an index in `[0, weights.len())` proportionally to
    /// non-negative `weights`; falls back to uniform if all weights are 0.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is negative/non-finite.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
            total += w;
        }
        if total == 0.0 {
            return self.below(weights.len());
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // Regression anchor: these values pin the exact stream so that the
        // case-study fleet (and hence EXPERIMENTS.md) cannot drift silently.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let parent = Rng::seed_from_u64(9);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let mut c = parent.fork(0);
        assert_eq!(a.next_u64(), c.next_u64());
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut rng = Rng::seed_from_u64(17);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(31);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = crate::stats::mean(&samples);
        let sd = crate::stats::std_dev(&samples);
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn lognormal_unit_mean_has_unit_mean_and_target_cv() {
        let mut rng = Rng::seed_from_u64(77);
        let samples: Vec<f64> = (0..100_000).map(|_| rng.lognormal_unit_mean(0.5)).collect();
        let mean = crate::stats::mean(&samples);
        let cv = crate::stats::coefficient_of_variation(&samples);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((cv - 0.5).abs() < 0.03, "cv {cv}");
        assert_eq!(rng.lognormal_unit_mean(0.0), 1.0);
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut rng = Rng::seed_from_u64(101);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.pareto(2.0, 3.0)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // E[X] = alpha * x_m / (alpha - 1) = 3.0 for (2, 3).
        let mean = crate::stats::mean(&samples);
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut rng = Rng::seed_from_u64(55);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.geometric(0.25) as f64).collect();
        let mean = crate::stats::mean(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(items, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Rng::seed_from_u64(13);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts {counts:?}");
        // All-zero weights fall back to uniform.
        let i = rng.weighted_index(&[0.0, 0.0]);
        assert!(i < 2);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let (i, &v) = rng.choose(&[7, 8, 9]).unwrap();
        assert_eq!([7, 8, 9][i], v);
    }
}
