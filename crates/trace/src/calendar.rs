use serde::{Deserialize, Serialize};

use crate::TraceError;

const MINUTES_PER_DAY: u32 = 24 * 60;
const DAYS_PER_WEEK: usize = 7;

/// Slot/day/week arithmetic for regularly sampled traces.
///
/// The paper characterizes workloads with one observation every `m` minutes,
/// `T` observations per day (`T = 288` for 5-minute sampling) and `W` weeks
/// of history. A `Calendar` captures `m` and derives everything else.
///
/// # Example
///
/// ```
/// use ropus_trace::Calendar;
///
/// let cal = Calendar::five_minute();
/// assert_eq!(cal.slots_per_day(), 288);
/// assert_eq!(cal.slots_per_week(), 2016);
/// assert_eq!(cal.slot_minutes(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Calendar {
    slot_minutes: u32,
}

impl Calendar {
    /// Creates a calendar with the given slot length in minutes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSlotLength`] if `slot_minutes` is zero or
    /// does not divide 1440 (the number of minutes in a day) evenly.
    pub fn new(slot_minutes: u32) -> Result<Self, TraceError> {
        if slot_minutes == 0 || !MINUTES_PER_DAY.is_multiple_of(slot_minutes) {
            return Err(TraceError::InvalidSlotLength {
                minutes: slot_minutes,
            });
        }
        Ok(Calendar { slot_minutes })
    }

    /// The paper's default: one observation every 5 minutes (`T = 288`).
    pub fn five_minute() -> Self {
        Calendar { slot_minutes: 5 }
    }

    /// Length of one slot in minutes.
    pub fn slot_minutes(&self) -> u32 {
        self.slot_minutes
    }

    /// Number of observation slots per day (the paper's `T`).
    pub fn slots_per_day(&self) -> usize {
        (MINUTES_PER_DAY / self.slot_minutes) as usize
    }

    /// Number of observation slots per week.
    pub fn slots_per_week(&self) -> usize {
        self.slots_per_day() * DAYS_PER_WEEK
    }

    /// Number of whole slots covered by `minutes` of wall-clock time.
    ///
    /// Used to convert a `T_degr` limit ("no more than 30 minutes of
    /// degradation") or a CoS deadline into a number of observations.
    pub fn slots_in_minutes(&self, minutes: u32) -> usize {
        (minutes / self.slot_minutes) as usize
    }

    /// Decomposes a flat sample index into (week, day-of-week, slot-of-day).
    pub fn position(&self, index: usize) -> SlotPosition {
        let per_day = self.slots_per_day();
        let per_week = self.slots_per_week();
        let week = index / per_week;
        let within_week = index % per_week;
        let day = DayOfWeek::from_index(within_week / per_day);
        let slot = within_week % per_day;
        SlotPosition { week, day, slot }
    }

    /// Inverse of [`position`](Self::position): the flat index of a position.
    pub fn index_of(&self, position: SlotPosition) -> usize {
        position.week * self.slots_per_week()
            + position.day.index() * self.slots_per_day()
            + position.slot
    }

    /// Slot-of-day for a flat index (0 = midnight..first slot).
    pub fn slot_of_day(&self, index: usize) -> usize {
        index % self.slots_per_day()
    }

    /// Day of week for a flat index; week starts on Monday.
    pub fn day_of_week(&self, index: usize) -> DayOfWeek {
        DayOfWeek::from_index((index % self.slots_per_week()) / self.slots_per_day())
    }

    /// Week number for a flat index (the paper's `w`, zero-based).
    pub fn week_of(&self, index: usize) -> usize {
        index / self.slots_per_week()
    }

    /// Fraction of the day elapsed at the *start* of the slot, in `[0, 1)`.
    pub fn time_of_day_fraction(&self, index: usize) -> f64 {
        self.slot_of_day(index) as f64 / self.slots_per_day() as f64
    }
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar::five_minute()
    }
}

/// Day of the week; weeks start on Monday as in typical enterprise traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Monday (index 0).
    Monday,
    /// Tuesday (index 1).
    Tuesday,
    /// Wednesday (index 2).
    Wednesday,
    /// Thursday (index 3).
    Thursday,
    /// Friday (index 4).
    Friday,
    /// Saturday (index 5).
    Saturday,
    /// Sunday (index 6).
    Sunday,
}

impl DayOfWeek {
    /// All seven days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Zero-based index with Monday = 0.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Day for a zero-based index; indices wrap modulo 7.
    pub fn from_index(index: usize) -> DayOfWeek {
        // lint:allow(panic-slice-index): `% 7` indexes the 7-element ALL
        // array, so the lookup is infallible.
        Self::ALL[index % 7]
    }

    /// Whether the day is Saturday or Sunday.
    ///
    /// Enterprise interactive workloads (the paper's motivating class) are
    /// markedly lighter on weekends; the generator uses this.
    pub fn is_weekend(&self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

/// A sample's position within the weekly pattern: `(week, day, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotPosition {
    /// Zero-based week number (the paper's `w`).
    pub week: usize,
    /// Day of the week (the paper's `x`).
    pub day: DayOfWeek,
    /// Zero-based slot of the day (the paper's `t`, `0 <= t < T`).
    pub slot: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_minute_calendar_matches_paper_constants() {
        let cal = Calendar::five_minute();
        assert_eq!(cal.slots_per_day(), 288);
        assert_eq!(cal.slots_per_week(), 2016);
        assert_eq!(cal.slots_in_minutes(30), 6);
        assert_eq!(cal.slots_in_minutes(60), 12);
        assert_eq!(cal.slots_in_minutes(120), 24);
    }

    #[test]
    fn rejects_slot_lengths_that_do_not_divide_a_day() {
        assert!(Calendar::new(0).is_err());
        assert!(Calendar::new(7).is_err());
        assert!(Calendar::new(11).is_err());
        assert!(Calendar::new(1441).is_err());
        for ok in [1, 5, 10, 15, 30, 60, 1440] {
            assert!(Calendar::new(ok).is_ok(), "{ok} should be valid");
        }
    }

    #[test]
    fn position_round_trips_through_index() {
        let cal = Calendar::new(30).unwrap();
        for index in [0, 1, 47, 48, 100, 336, 500, 1000] {
            let pos = cal.position(index);
            assert_eq!(cal.index_of(pos), index);
        }
    }

    #[test]
    fn position_decomposition_is_consistent() {
        let cal = Calendar::five_minute();
        // First slot of the second day of week 1.
        let index = cal.slots_per_week() + cal.slots_per_day();
        let pos = cal.position(index);
        assert_eq!(pos.week, 1);
        assert_eq!(pos.day, DayOfWeek::Tuesday);
        assert_eq!(pos.slot, 0);
        assert_eq!(cal.slot_of_day(index), 0);
        assert_eq!(cal.week_of(index), 1);
    }

    #[test]
    fn day_of_week_cycles_weekly() {
        let cal = Calendar::five_minute();
        assert_eq!(cal.day_of_week(0), DayOfWeek::Monday);
        assert_eq!(
            cal.day_of_week(cal.slots_per_day() * 5),
            DayOfWeek::Saturday
        );
        assert_eq!(cal.day_of_week(cal.slots_per_day() * 6), DayOfWeek::Sunday);
        assert_eq!(cal.day_of_week(cal.slots_per_week()), DayOfWeek::Monday);
    }

    #[test]
    fn weekend_flags() {
        assert!(DayOfWeek::Saturday.is_weekend());
        assert!(DayOfWeek::Sunday.is_weekend());
        assert!(!DayOfWeek::Wednesday.is_weekend());
    }

    #[test]
    fn time_of_day_fraction_spans_unit_interval() {
        let cal = Calendar::five_minute();
        assert_eq!(cal.time_of_day_fraction(0), 0.0);
        let last = cal.slots_per_day() - 1;
        let frac = cal.time_of_day_fraction(last);
        assert!(frac < 1.0 && frac > 0.99);
    }
}
