//! Plain-text import/export of traces.
//!
//! Capacity-management tooling around R-Opus exchanges demand traces as CSV
//! (one column per workload, one row per observation slot) — the same shape
//! operators export from monitoring systems. `serde` round-trips of
//! [`crate::Trace`] handle structured storage; this module handles
//! the flat interchange format.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{Calendar, Trace, TraceError};

/// Writes named traces as CSV: a header of names, then one row per slot.
///
/// All traces must be aligned (same length); values are written with full
/// `f64` round-trip precision.
///
/// # Errors
///
/// Returns [`TraceError::Misaligned`] if trace lengths differ or
/// [`TraceError::Empty`] if no traces are given; I/O failures are returned
/// as [`std::io::Error`] wrapped in [`CsvError`].
pub fn write_csv<W: Write>(mut writer: W, traces: &[(String, &Trace)]) -> Result<(), CsvError> {
    let first = traces.first().ok_or(CsvError::Trace(TraceError::Empty))?;
    let len = first.1.len();
    for (_, trace) in traces {
        if trace.len() != len {
            return Err(CsvError::Trace(TraceError::Misaligned {
                left: len,
                right: trace.len(),
            }));
        }
    }
    let header: Vec<&str> = traces.iter().map(|(name, _)| name.as_str()).collect();
    writeln!(writer, "{}", header.join(",")).map_err(CsvError::Io)?;
    for row in 0..len {
        let mut line = String::new();
        for (i, (_, trace)) in traces.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            // lint:allow(panic-slice-index): every trace length was
            // validated equal to `len` above, and `row < len`.
            line.push_str(&format!("{}", trace.samples()[row]));
        }
        writeln!(writer, "{line}").map_err(CsvError::Io)?;
    }
    Ok(())
}

/// Reads traces from CSV produced by [`write_csv`] (or any monitoring
/// export with a name header and one numeric column per workload).
///
/// # Errors
///
/// Returns [`CsvError::Trace`] with [`TraceError::Parse`] for malformed
/// rows, ragged rows, or non-finite values, and [`CsvError::Io`] for I/O
/// failures.
pub fn read_csv<R: Read>(reader: R, calendar: Calendar) -> Result<Vec<(String, Trace)>, CsvError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Trace(TraceError::Parse {
        line: 1,
        message: "missing header".into(),
    }))?;
    let header = header.map_err(CsvError::Io)?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];

    for (idx, line) in lines {
        let line = line.map_err(CsvError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != names.len() {
            return Err(CsvError::Trace(TraceError::Parse {
                line: idx + 1,
                message: format!("expected {} fields, found {}", names.len(), fields.len()),
            }));
        }
        for (column, field) in columns.iter_mut().zip(&fields) {
            let value: f64 = field.trim().parse().map_err(|_| {
                CsvError::Trace(TraceError::Parse {
                    line: idx + 1,
                    message: format!("not a number: {field:?}"),
                })
            })?;
            column.push(value);
        }
    }

    names
        .into_iter()
        .zip(columns)
        .map(|(name, samples)| {
            Trace::from_samples(calendar, samples)
                .map(|trace| (name, trace))
                .map_err(CsvError::Trace)
        })
        .collect()
}

/// Error from CSV trace interchange.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// The data violated a trace invariant or was malformed.
    Trace(TraceError),
    /// The underlying reader or writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Trace(e) => write!(f, "trace error: {e}"),
            CsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Trace(e) => Some(e),
            CsvError::Io(e) => Some(e),
        }
    }
}

impl From<TraceError> for CsvError {
    fn from(err: TraceError) -> Self {
        CsvError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    #[test]
    fn csv_round_trip() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.5, 0.125]).unwrap();
        let b = Trace::from_samples(cal(), vec![0.0, 4.0, 9.75]).unwrap();
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &[("alpha".to_string(), &a), ("beta".to_string(), &b)],
        )
        .unwrap();
        let back = read_csv(buf.as_slice(), cal()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "alpha");
        assert_eq!(back[0].1, a);
        assert_eq!(back[1].1, b);
    }

    #[test]
    fn write_rejects_misaligned_traces() {
        let a = Trace::from_samples(cal(), vec![1.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let err = write_csv(Vec::new(), &[("a".into(), &a), ("b".into(), &b)]).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Trace(TraceError::Misaligned { .. })
        ));
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let data = "a,b\n1.0,2.0\n3.0\n";
        let err = read_csv(data.as_bytes(), cal()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Trace(TraceError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn read_rejects_non_numeric() {
        let data = "a\nxyz\n";
        let err = read_csv(data.as_bytes(), cal()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Trace(TraceError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn read_rejects_negative_values_via_trace_validation() {
        let data = "a\n-1.0\n";
        let err = read_csv(data.as_bytes(), cal()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Trace(TraceError::InvalidSample { .. })
        ));
    }

    #[test]
    fn read_skips_blank_lines() {
        let data = "a\n1.0\n\n2.0\n";
        let traces = read_csv(data.as_bytes(), cal()).unwrap();
        assert_eq!(traces[0].1.samples(), &[1.0, 2.0]);
    }
}
