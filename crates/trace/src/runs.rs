//! Run-length analysis of boolean conditions over traces.
//!
//! The time-limited-degradation requirement (`T_degr`, §III of the paper)
//! constrains the *contiguous* time a workload may spend above `U_high`.
//! With `R` observations per `T_degr` minutes, the translation must ensure
//! no window of `R + 1` consecutive observations is entirely degraded.
//! This module provides the generic run and window machinery.

/// A maximal run of consecutive indices where a predicate held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Index of the first sample in the run.
    pub start: usize,
    /// Number of consecutive samples in the run (always >= 1).
    pub len: usize,
}

impl Run {
    /// One-past-the-end index of the run.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Maximal runs of samples for which `predicate` returns `true`.
///
/// # Example
///
/// ```
/// use ropus_trace::runs::{runs_where, Run};
///
/// let demand = [1.0, 5.0, 6.0, 1.0, 7.0];
/// let runs = runs_where(&demand, |d| d > 4.0);
/// assert_eq!(runs, vec![Run { start: 1, len: 2 }, Run { start: 4, len: 1 }]);
/// ```
pub fn runs_where<F>(samples: &[f64], mut predicate: F) -> Vec<Run>
where
    F: FnMut(f64) -> bool,
{
    let mut runs = Vec::new();
    let mut current: Option<Run> = None;
    for (i, &v) in samples.iter().enumerate() {
        if predicate(v) {
            match current.as_mut() {
                Some(run) => run.len += 1,
                None => current = Some(Run { start: i, len: 1 }),
            }
        } else if let Some(run) = current.take() {
            runs.push(run);
        }
    }
    if let Some(run) = current {
        runs.push(run);
    }
    runs
}

/// Length of the longest run satisfying `predicate` (0 if none).
pub fn longest_run<F>(samples: &[f64], predicate: F) -> usize
where
    F: FnMut(f64) -> bool,
{
    runs_where(samples, predicate)
        .iter()
        .map(|r| r.len)
        .max()
        .unwrap_or(0)
}

/// First window of exactly `window` consecutive samples all satisfying
/// `predicate`, returned as its start index.
///
/// This is the violation detector for `T_degr`: with `R` observations per
/// `T_degr` minutes, a window of `R + 1` all-degraded observations means
/// degradation persisted *longer* than `T_degr`.
pub fn first_full_window<F>(samples: &[f64], window: usize, mut predicate: F) -> Option<usize>
where
    F: FnMut(f64) -> bool,
{
    if window == 0 {
        return Some(0);
    }
    let mut streak = 0usize;
    for (i, &v) in samples.iter().enumerate() {
        if predicate(v) {
            streak += 1;
            if streak == window {
                return Some(i + 1 - window);
            }
        } else {
            streak = 0;
        }
    }
    None
}

/// Smallest sample within `samples[start..start + len]`.
///
/// # Panics
///
/// Panics if the range is empty or out of bounds.
pub fn min_in_range(samples: &[f64], start: usize, len: usize) -> f64 {
    assert!(
        len > 0 && start + len <= samples.len(),
        "range out of bounds"
    );
    // lint:allow(panic-slice-index): the assert above pins the range
    // inside the slice; the documented panic is the precondition check.
    samples[start..start + len]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
}

/// Total number of samples covered by runs at least `min_len` long.
///
/// Used to report how much trace time sits in *sustained* degradation
/// episodes, as opposed to isolated spikes.
pub fn time_in_long_runs<F>(samples: &[f64], min_len: usize, predicate: F) -> usize
where
    F: FnMut(f64) -> bool,
{
    runs_where(samples, predicate)
        .iter()
        .filter(|r| r.len >= min_len)
        .map(|r| r.len)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: [f64; 10] = [0.0, 5.0, 5.0, 5.0, 0.0, 5.0, 0.0, 5.0, 5.0, 5.0];

    fn hot(v: f64) -> bool {
        v > 1.0
    }

    #[test]
    fn finds_all_maximal_runs() {
        let runs = runs_where(&TRACE, hot);
        assert_eq!(
            runs,
            vec![
                Run { start: 1, len: 3 },
                Run { start: 5, len: 1 },
                Run { start: 7, len: 3 },
            ]
        );
        assert_eq!(runs[0].end(), 4);
    }

    #[test]
    fn empty_and_all_true_inputs() {
        assert!(runs_where(&[], hot).is_empty());
        let all = runs_where(&[2.0, 2.0], hot);
        assert_eq!(all, vec![Run { start: 0, len: 2 }]);
        assert!(runs_where(&[0.0, 0.0], hot).is_empty());
    }

    #[test]
    fn longest_run_length() {
        assert_eq!(longest_run(&TRACE, hot), 3);
        assert_eq!(longest_run(&[0.0], hot), 0);
    }

    #[test]
    fn first_full_window_detection() {
        assert_eq!(first_full_window(&TRACE, 3, hot), Some(1));
        assert_eq!(first_full_window(&TRACE, 4, hot), None);
        assert_eq!(first_full_window(&TRACE, 1, hot), Some(1));
        assert_eq!(first_full_window(&TRACE, 0, hot), Some(0));
        // A window longer than the trace never matches.
        assert_eq!(first_full_window(&TRACE, 11, hot), None);
    }

    #[test]
    fn first_full_window_finds_second_run_when_first_is_short() {
        let t = [5.0, 0.0, 5.0, 5.0, 5.0, 5.0];
        assert_eq!(first_full_window(&t, 4, hot), Some(2));
    }

    #[test]
    fn min_in_range_works() {
        assert_eq!(min_in_range(&TRACE, 1, 3), 5.0);
        assert_eq!(min_in_range(&[3.0, 1.0, 2.0], 0, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn min_in_range_rejects_bad_range() {
        min_in_range(&TRACE, 8, 5);
    }

    #[test]
    fn time_in_long_runs_filters_short_episodes() {
        assert_eq!(time_in_long_runs(&TRACE, 2, hot), 6);
        assert_eq!(time_in_long_runs(&TRACE, 4, hot), 0);
        assert_eq!(time_in_long_runs(&TRACE, 1, hot), 7);
    }
}
