//! Demand traces and synthetic workload generation for the R-Opus framework.
//!
//! This crate provides the data substrate every other R-Opus component builds
//! on:
//!
//! * [`Calendar`] — slot/day/week arithmetic for regularly sampled traces
//!   (the paper samples every 5 minutes, giving `T = 288` slots per day);
//! * [`Trace`] — a validated, non-negative time series of demand (or
//!   allocation) observations aligned to a calendar, backed by a shared
//!   immutable buffer so clones and weekly windows are allocation-free;
//! * [`TraceView`] — the borrowed, lifetime-bound companion of [`Trace`]
//!   for layers that only read samples;
//! * [`FleetMatrix`] — columnar, slot-major storage packing a whole
//!   fleet's traces into one contiguous buffer with O(1) per-app `Trace`
//!   windows;
//! * [`kernels`] — the chunked, auto-vectorizable slot kernels
//!   (aggregate, cap/scale, CoS split, lane-chunked reductions) every hot
//!   loop funnels through;
//! * [`stats`] — percentiles, summaries and the distribution samplers used
//!   by the generator;
//! * [`rng`] — a deterministic, splittable PRNG so experiments are
//!   bit-reproducible across platforms;
//! * [`runs`] — run-length analysis used by the time-limited-degradation
//!   (`T_degr`) translation;
//! * [`gen`] — the synthetic enterprise workload generator and the 26-app
//!   case-study fleet standing in for the paper's proprietary HP traces.
//!
//! # Example
//!
//! ```
//! use ropus_trace::{Calendar, Trace};
//! use ropus_trace::gen::{WorkloadProfile, generate};
//! use ropus_trace::rng::Rng;
//!
//! # fn main() -> Result<(), ropus_trace::TraceError> {
//! let calendar = Calendar::five_minute();
//! let profile = WorkloadProfile::builder("web-frontend")
//!     .mean_demand(2.0)
//!     .diurnal_amplitude(1.5)
//!     .build();
//! let mut rng = Rng::seed_from_u64(7);
//! let trace: Trace = generate(&profile, calendar, 4, &mut rng);
//! assert_eq!(trace.weeks(), 4);
//! assert!(trace.peak() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod calendar;
mod error;
mod matrix;
mod trace;

pub mod gen;
pub mod io;
pub mod kernels;
pub mod rng;
pub mod runs;
pub mod stats;

pub use calendar::{Calendar, DayOfWeek, SlotPosition};
pub use error::TraceError;
pub use matrix::FleetMatrix;
pub use trace::{Trace, TraceView};
