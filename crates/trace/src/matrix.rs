//! Columnar, slot-major storage for a whole fleet of demand traces.
//!
//! [`FleetMatrix`] packs every app's slots into **one** contiguous
//! `Arc<Vec<f64>>`: column `a` (app `a`) occupies the slot-major run
//! `buf[a·slots .. (a+1)·slots]`. Consequences:
//!
//! * per-app access is a contiguous slice — every kernel in
//!   [`crate::kernels`] runs at full memory bandwidth over a column;
//! * a column converts to a [`Trace`] in O(1): the trace is a window over
//!   the shared fleet buffer (same machinery as `weeks_range`), so the
//!   columnar and per-`Trace` worlds coexist without copying;
//! * the buffer is immutable after construction, which is what keeps
//!   caches keyed by trace identity (the placement `FitEngine` memo, the
//!   per-window sorted views) sound.

use std::sync::Arc;

use crate::kernels;
use crate::{Calendar, Trace, TraceError, TraceView};

/// A fleet of equally long, calendar-aligned traces in one slot-major
/// contiguous buffer; see the module docs for the layout.
///
/// # Example
///
/// ```
/// use ropus_trace::{Calendar, FleetMatrix, Trace};
///
/// # fn main() -> Result<(), ropus_trace::TraceError> {
/// let cal = Calendar::five_minute();
/// let a = Trace::from_samples(cal, vec![1.0, 2.0])?;
/// let b = Trace::from_samples(cal, vec![0.5, 0.5])?;
/// let fleet = FleetMatrix::from_traces(&[a, b])?;
/// assert_eq!(fleet.apps(), 2);
/// assert_eq!(fleet.aggregate(), vec![1.5, 2.5]);
/// assert!(fleet.column_trace(1).shares_buffer(&fleet.column_trace(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FleetMatrix {
    calendar: Calendar,
    buf: Arc<Vec<f64>>,
    apps: usize,
    slots: usize,
}

impl FleetMatrix {
    /// Packs a slice of traces into one contiguous slot-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty fleet,
    /// [`TraceError::Misaligned`] when trace lengths differ, and
    /// [`TraceError::CalendarMismatch`] when calendars differ.
    pub fn from_traces(traces: &[Trace]) -> Result<Self, TraceError> {
        Self::from_views(traces.iter().map(Trace::view))
    }

    /// Packs an iterator of trace views into one contiguous buffer; same
    /// errors as [`FleetMatrix::from_traces`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty fleet,
    /// [`TraceError::Misaligned`] on length mismatch, and
    /// [`TraceError::CalendarMismatch`] on calendar mismatch.
    pub fn from_views<'a, I>(views: I) -> Result<Self, TraceError>
    where
        I: IntoIterator<Item = TraceView<'a>>,
    {
        let mut iter = views.into_iter();
        let first = iter.next().ok_or(TraceError::Empty)?;
        let calendar = first.calendar();
        let slots = first.len();
        let mut buf = Vec::new();
        buf.extend_from_slice(first.samples());
        let mut apps = 1usize;
        for view in iter {
            if view.calendar() != calendar {
                return Err(TraceError::CalendarMismatch {
                    left: calendar.slot_minutes(),
                    right: view.calendar().slot_minutes(),
                });
            }
            if view.len() != slots {
                return Err(TraceError::Misaligned {
                    left: slots,
                    right: view.len(),
                });
            }
            buf.extend_from_slice(view.samples());
            apps += 1;
        }
        Ok(FleetMatrix {
            calendar,
            buf: Arc::new(buf),
            apps,
            slots,
        })
    }

    /// The calendar every column is aligned to.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Number of apps (columns).
    pub fn apps(&self) -> usize {
        self.apps
    }

    /// Number of slots per app.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether the matrix holds no apps. Always `false` for a constructed
    /// matrix; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.apps == 0
    }

    /// The contiguous slot run of app `a`, or `None` past the end.
    pub fn column(&self, a: usize) -> Option<&[f64]> {
        let start = a.checked_mul(self.slots)?;
        self.buf.get(start..start + self.slots)
    }

    /// Iterator over all columns in app order.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.buf.chunks_exact(self.slots.max(1))
    }

    /// App `a` as an O(1) [`Trace`] window sharing the fleet buffer.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn column_trace(&self, a: usize) -> Trace {
        assert!(
            a < self.apps,
            "column {a} out of range ({} apps)",
            self.apps
        );
        Trace::from_window(
            self.calendar,
            Arc::clone(&self.buf),
            a * self.slots,
            self.slots,
        )
    }

    /// Per-slot sum over all apps, accumulated column by column in app
    /// order (bit-identical to the scalar reference loop).
    pub fn aggregate(&self) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.slots];
        self.aggregate_into(&mut acc);
        acc
    }

    /// As [`FleetMatrix::aggregate`], accumulating **into** a caller-owned
    /// buffer (resized and zeroed first) so hot loops can reuse scratch.
    pub fn aggregate_into(&self, acc: &mut Vec<f64>) {
        acc.clear();
        acc.resize(self.slots, 0.0);
        for column in self.columns() {
            kernels::add_assign(acc, column);
        }
    }

    /// Per-app upper nearest-rank percentile (`q` in `[0, 100]`), one pass
    /// of the sort kernel per column with a reused scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile_upper_each(&self, q: f64) -> Vec<f64> {
        let mut scratch: Vec<f64> = Vec::with_capacity(self.slots);
        self.columns()
            .map(|column| {
                scratch.clear();
                scratch.extend_from_slice(column);
                scratch.sort_by(f64::total_cmp);
                crate::stats::percentile_upper_of_sorted(&scratch, q)
            })
            .collect()
    }

    /// Per-app mean via the lane-chunked [`kernels::mean`].
    pub fn mean_each(&self) -> Vec<f64> {
        self.columns().map(kernels::mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn fleet() -> FleetMatrix {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Trace::from_samples(cal(), vec![0.5, 0.25, 0.125]).unwrap();
        let c = Trace::from_samples(cal(), vec![4.0, 0.0, 1.0]).unwrap();
        FleetMatrix::from_traces(&[a, b, c]).unwrap()
    }

    #[test]
    fn layout_is_slot_major_per_column() {
        let m = fleet();
        assert_eq!(m.apps(), 3);
        assert_eq!(m.slots(), 3);
        assert_eq!(m.column(1).unwrap(), &[0.5, 0.25, 0.125]);
        assert!(m.column(3).is_none());
        let cols: Vec<&[f64]> = m.columns().collect();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[2], &[4.0, 0.0, 1.0]);
    }

    #[test]
    fn column_traces_share_one_buffer() {
        let m = fleet();
        let t0 = m.column_trace(0);
        let t2 = m.column_trace(2);
        assert!(t0.shares_buffer(&t2));
        assert_eq!(t2.samples(), &[4.0, 0.0, 1.0]);
        assert_eq!(t0.calendar(), cal());
    }

    #[test]
    fn aggregate_matches_scalar_reference() {
        let m = fleet();
        let mut reference = vec![0.0f64; m.slots()];
        for column in m.columns() {
            for (acc, &v) in reference.iter_mut().zip(column) {
                *acc += v;
            }
        }
        assert_eq!(m.aggregate(), reference);
        let mut reused = vec![9.0; 1];
        m.aggregate_into(&mut reused);
        assert_eq!(reused, reference);
    }

    #[test]
    fn construction_validates_alignment() {
        let a = Trace::from_samples(cal(), vec![1.0, 2.0]).unwrap();
        let short = Trace::from_samples(cal(), vec![1.0]).unwrap();
        assert!(matches!(
            FleetMatrix::from_traces(&[a.clone(), short]),
            Err(TraceError::Misaligned { .. })
        ));
        let hourly = Trace::from_samples(Calendar::new(60).unwrap(), vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            FleetMatrix::from_traces(&[a, hourly]),
            Err(TraceError::CalendarMismatch { .. })
        ));
        assert!(matches!(
            FleetMatrix::from_traces(&[]),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn per_app_stats_match_trace_stats() {
        let m = fleet();
        for a in 0..m.apps() {
            let t = m.column_trace(a);
            assert_eq!(m.percentile_upper_each(97.0)[a], t.percentile_upper(97.0));
            assert_eq!(m.mean_each()[a], t.mean());
        }
    }
}
