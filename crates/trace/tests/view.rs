//! Property tests for the zero-copy trace storage: windowed views must be
//! observationally identical to eagerly-copied subtraces, clones must
//! share storage, and the serde validation guard must survive the
//! `Arc<[f64]>` refactor.
//!
//! An hourly calendar (168 slots/week) keeps generated traces small.

use proptest::prelude::*;

use ropus_trace::{Calendar, Trace, TraceView};
use serde::{Deserialize, Serialize, Value};

fn hourly() -> Calendar {
    Calendar::new(60).unwrap()
}

const WEEK: usize = 168;

/// One to four weeks of non-negative hourly samples.
fn weeks_of_samples() -> impl Strategy<Value = Vec<f64>> {
    (
        1usize..=4,
        proptest::collection::vec(0.0f64..50.0, 4 * WEEK),
    )
        .prop_map(|(w, v)| v[..w * WEEK].to_vec())
}

/// Serializes `samples` under a forged trace envelope, bypassing the
/// `Trace` constructor so deserialization alone must catch bad values.
fn forged_trace_value(samples: &[f64]) -> Value {
    Value::Object(vec![
        ("calendar".to_string(), hourly().serialize()),
        ("samples".to_string(), samples.serialize()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windowing_equals_eager_subtrace(samples in weeks_of_samples(), bounds in (0usize..=4, 0usize..=4)) {
        let trace = Trace::from_samples(hourly(), samples.clone()).unwrap();
        let weeks = trace.weeks();
        let (a, b) = (bounds.0 % weeks, bounds.1 % weeks);
        let (lo, hi) = (a.min(b), a.max(b) + 1);

        let window = trace.weeks_range(lo, hi).unwrap();
        let eager =
            Trace::from_samples(hourly(), samples[lo * WEEK..hi * WEEK].to_vec()).unwrap();

        // Same observable trace...
        prop_assert_eq!(&window, &eager);
        prop_assert_eq!(window.samples(), eager.samples());
        prop_assert_eq!(window.weeks(), hi - lo);
        prop_assert!((window.mean() - eager.mean()).abs() <= 1e-12);
        prop_assert_eq!(window.peak(), eager.peak());
        prop_assert_eq!(window.percentile(99.0), eager.percentile(99.0));
        // ...but zero copies: the window shares the parent's buffer, the
        // eager copy does not.
        prop_assert!(window.shares_buffer(&trace));
        prop_assert!(!eager.shares_buffer(&trace));

        // The borrowed view agrees with both.
        let view = trace.view().weeks_range(lo, hi).unwrap();
        prop_assert_eq!(view, window.view());
        prop_assert_eq!(view.samples(), eager.samples());
    }

    #[test]
    fn clone_and_whole_range_share_storage(samples in weeks_of_samples()) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let cloned = trace.clone();
        prop_assert_eq!(&cloned, &trace);
        prop_assert!(cloned.shares_buffer(&trace));
        // Windows of clones still point at the one allocation.
        let whole = cloned.weeks_range(0, cloned.weeks()).unwrap();
        prop_assert!(whole.shares_buffer(&trace));
    }

    #[test]
    fn view_round_trips_through_foreign_slices(samples in weeks_of_samples()) {
        let trace = Trace::from_samples(hourly(), samples.clone()).unwrap();
        // A view over a foreign slice validates and matches the trace view.
        let foreign = TraceView::new(hourly(), &samples).unwrap();
        prop_assert_eq!(foreign, trace.view());
        // Promoting a view back to a trace copies once and round-trips.
        let owned = foreign.to_trace();
        prop_assert_eq!(&owned, &trace);
        prop_assert!(!owned.shares_buffer(&trace));
    }

    #[test]
    fn serde_still_rejects_nan_and_negatives(
        samples in weeks_of_samples(),
        slot in 0usize..WEEK,
        bad in (0usize..3, -50.0f64..-0.001).prop_map(|(k, neg)| match k {
            0 => f64::NAN,
            1 => f64::NEG_INFINITY,
            _ => neg,
        }),
    ) {
        // The untampered envelope deserializes to an equal trace.
        let good = Trace::deserialize(&forged_trace_value(&samples)).unwrap();
        prop_assert_eq!(good.samples(), &samples[..]);

        // Tampering one sample must be caught by the RawTrace guard.
        let mut tampered = samples;
        let at = slot % tampered.len();
        tampered[at] = bad;
        prop_assert!(Trace::deserialize(&forged_trace_value(&tampered)).is_err());
    }
}
