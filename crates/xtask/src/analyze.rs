//! The whole-workspace analysis pass: rules that need the symbol table
//! and the approximate call graph rather than a single masked line.
//!
//! Three rule families live here (DESIGN.md §5g):
//!
//! * **`det-taint`** — reachability from the deterministic pipeline entry
//!   points (`FitEngine` / `EngineSession` methods, `replay*` in the
//!   chaos crate, `translate*` in the qos crate) to nondeterminism sinks:
//!   wall-clock reads, ad-hoc randomness, unordered hash collections, and
//!   thread-identity branches. The obs clock facade and the seeded-rng
//!   facade are the declared sinks-that-are-not-sinks.
//! * **`panic-reach`** — panic sites (`unwrap`, `expect`, panicking
//!   macros, non-literal indexing) inside *private* functions that a
//!   `pub` library API can reach; the per-site panic rules cover the
//!   sites themselves, this rule adds the call-path evidence showing how
//!   the abort escapes through a public signature.
//! * **`obs-name-registry`** — every metric/span name at an obs
//!   recording call must be declared in the one registry module
//!   (`crates/obs/src/names.rs`), either by literal value or via a
//!   `names::CONST` reference.
//!
//! Every diagnostic carries a [`PathStep`] chain so text, JSON, and SARIF
//! output can show the full call path, not just the sink line.
//!
//! A `lint:allow` at a sink or panic site clears the graph rule too when
//! it names either the graph rule id or the corresponding per-site rule
//! id — one justified site must not need two markers.

use std::collections::BTreeSet;

use crate::callgraph::{self, FnId, PathStep, Reachability};
use crate::config::Config;
use crate::lex::{self, Token, TokenKind};
use crate::report::Diagnostic;
use crate::rules::{self, Rule, Severity};
use crate::scan::Masked;
use crate::symbols::{significant, FileSymbols};

/// One preprocessed file handed to the workspace pass: everything the
/// per-file textual pass already computed, lexed exactly once.
pub struct FileData {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The raw source text.
    pub source: String,
    /// Lossless token stream of `source`.
    pub tokens: Vec<Token>,
    /// Masked per-line view derived from `tokens`.
    pub masked: Masked,
    /// Per-line sets of validly allowed rule ids.
    pub allowed: Vec<BTreeSet<String>>,
    /// Symbol table of `source` (with `path` filled in).
    pub symbols: FileSymbols,
    /// Whether the whole file is test code (integration tests).
    pub whole_file_test: bool,
}

/// Runs the three graph rule families over the preprocessed workspace.
pub fn graph_rules(files: &[FileData], config: &Config) -> Vec<Diagnostic> {
    let registry = rules::registry();
    let rule = |id: &str| {
        registry
            .iter()
            .find(|r| r.id == id)
            .expect("graph rule ids are registered")
    };

    let file_refs: Vec<(&str, &[Token])> = files
        .iter()
        .map(|f| (f.source.as_str(), f.tokens.as_slice()))
        .collect();
    let symbol_refs: Vec<&FileSymbols> = files.iter().map(|f| &f.symbols).collect();
    let graph = callgraph::build(&file_refs, &symbol_refs);
    let sigs: Vec<Vec<usize>> = files.iter().map(|f| significant(&f.tokens)).collect();
    let ranges: Vec<Vec<(usize, usize, usize)>> = files
        .iter()
        .enumerate()
        .map(|(f, file)| fn_line_ranges(file, &sigs[f]))
        .collect();

    let mut diagnostics = Vec::new();
    det_taint(
        files,
        &ranges,
        &graph,
        rule("det-taint"),
        config,
        &mut diagnostics,
    );
    panic_reach(
        files,
        &ranges,
        &graph,
        rule("panic-reach"),
        config,
        &mut diagnostics,
    );
    obs_name_registry(
        files,
        &sigs,
        &ranges,
        rule("obs-name-registry"),
        config,
        &mut diagnostics,
    );
    diagnostics
}

/// Per-function `(start_line, end_line, fn_index)` line ranges (0-based,
/// inclusive), from the declaration line to the body's closing brace.
/// Bodiless signatures are omitted — they cannot contain sites.
fn fn_line_ranges(file: &FileData, sig: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (i, item) in file.symbols.fns.iter().enumerate() {
        if item.body.is_empty() {
            continue;
        }
        let end_line = if item.body.end < sig.len() {
            file.tokens[sig[item.body.end]].line
        } else {
            file.tokens.last().map_or(item.line, |t| t.line)
        };
        out.push((item.line, end_line, i));
    }
    out
}

/// The innermost function whose line range contains `line`, if any
/// (nested fns shadow their enclosing item by narrower range).
fn fn_at(ranges: &[(usize, usize, usize)], line: usize) -> Option<usize> {
    ranges
        .iter()
        .filter(|(start, end, _)| *start <= line && line <= *end)
        .min_by_key(|(start, end, _)| end - start)
        .map(|&(_, _, i)| i)
}

/// Whether the site at `line` is excused: `lints.toml` or a line-level
/// `lint:allow` naming any of `ids` (the graph rule id or the matching
/// per-site rule id).
fn site_allowed(file: &FileData, line: usize, ids: &[&str], config: &Config) -> bool {
    ids.iter().any(|id| {
        config.allows(id, &file.path)
            || crate::line_allows(&file.allowed, &file.masked.code, line, id)
    })
}

/// The qualified display name of a function node.
fn symbol_name(files: &[FileData], id: FnId) -> String {
    let item = &files[id.0].symbols.fns[id.1];
    match &item.qual {
        Some(q) => format!("{q}::{}", item.name),
        None => item.name.clone(),
    }
}

/// Renders an entry-to-function chain as 1-based path steps.
fn chain_steps(files: &[FileData], chain: &[FnId]) -> Vec<PathStep> {
    chain
        .iter()
        .map(|&id| PathStep {
            symbol: symbol_name(files, id),
            file: files[id.0].path.clone(),
            line: files[id.0].symbols.fns[id.1].line + 1,
        })
        .collect()
}

/// Whether `line` of `file` is exempt as test code.
fn is_test_line(file: &FileData, line: usize) -> bool {
    file.whole_file_test || file.masked.in_test.get(line).copied().unwrap_or(false)
}

// ---------------------------------------------------------------- det-taint

/// One nondeterminism sink site.
struct Sink {
    line: usize,
    col: usize,
    /// What the site does, phrased for the diagnostic message.
    what: &'static str,
    /// The per-site rule whose `lint:allow` also clears the taint rule.
    site_rule: Option<&'static str>,
}

/// Collects the nondeterminism sinks of one file. The clock and rng
/// facades are the declared sinks: their own bodies are exempt.
fn det_sinks(file: &FileData) -> Vec<Sink> {
    let mut out = Vec::new();
    for (l, code) in file.masked.code.iter().enumerate() {
        if is_test_line(file, l) {
            continue;
        }
        if file.path != rules::CLOCK_FACADE {
            if let Some(col) = rules::match_wall_clock(code) {
                out.push(Sink {
                    line: l,
                    col,
                    what: "reads the wall clock",
                    site_rule: Some("det-wall-clock"),
                });
            } else if let Some(col) = code.find("WallClock") {
                out.push(Sink {
                    line: l,
                    col,
                    what: "constructs the real-time clock",
                    site_rule: Some("det-wall-clock"),
                });
            }
        }
        if file.path != rules::RNG_FACADE {
            if let Some(col) = rules::match_rng_adhoc(code) {
                out.push(Sink {
                    line: l,
                    col,
                    what: "re-seeds or re-implements a random generator",
                    site_rule: Some("det-rng-adhoc"),
                });
            }
        }
        if let Some(col) = rules::match_unordered_collection(code) {
            out.push(Sink {
                line: l,
                col,
                what: "uses an unordered hash collection",
                site_rule: Some("det-unordered-collection"),
            });
        }
        if let Some(col) = code
            .find("thread::current")
            .or_else(|| code.find("ThreadId"))
        {
            out.push(Sink {
                line: l,
                col,
                what: "branches on the current thread identity",
                site_rule: None,
            });
        }
    }
    out
}

/// Whether a function is a deterministic pipeline entry point.
fn is_det_entry(path: &str, item: &crate::symbols::FnItem) -> bool {
    matches!(
        item.qual.as_deref(),
        Some("FitEngine") | Some("EngineSession") | Some("MigrationOrchestrator")
    ) || (path.starts_with("crates/chaos/src/") && item.name.starts_with("replay"))
        || (path.starts_with("crates/qos/src/") && item.name.starts_with("translate"))
        || path.starts_with("crates/trace/src/kernels.rs")
        || (path.starts_with("crates/placement/src/sumtree.rs") && item.qual.is_some())
}

fn det_taint(
    files: &[FileData],
    ranges: &[Vec<(usize, usize, usize)>],
    graph: &callgraph::CallGraph,
    rule: &Rule,
    config: &Config,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let mut entries = Vec::new();
    for (f, file) in files.iter().enumerate() {
        for (i, item) in file.symbols.fns.iter().enumerate() {
            if !item.is_test && is_det_entry(&file.path, item) {
                entries.push((f, i));
            }
        }
    }
    if entries.is_empty() {
        return;
    }
    let reach = graph.reach(&entries);

    for (f, file) in files.iter().enumerate() {
        let Some(severity) = rule.severity_at(&file.path) else {
            continue;
        };
        for sink in det_sinks(file) {
            let mut ids = vec![rule.id];
            ids.extend(sink.site_rule);
            if site_allowed(file, sink.line, &ids, config) {
                continue;
            }
            let Some(i) = fn_at(&ranges[f], sink.line) else {
                continue;
            };
            if !reach.contains((f, i)) {
                continue;
            }
            let chain = reach.path_to((f, i));
            let entry = symbol_name(files, chain[0]);
            let mut path = chain_steps(files, &chain);
            path.push(PathStep {
                symbol: format!("sink: {}", sink.what),
                file: file.path.clone(),
                line: sink.line + 1,
            });
            diagnostics.push(Diagnostic {
                rule: rule.id.into(),
                severity,
                file: file.path.clone(),
                line: sink.line + 1,
                column: sink.col + 1,
                message: format!(
                    "deterministic entry point `{entry}` reaches a site that {} \
                     ({} call step(s) away)",
                    sink.what,
                    chain.len() - 1
                ),
                hint: rules::oneline(rule.hint),
                path,
            });
        }
    }
}

// -------------------------------------------------------------- panic-reach

/// A line matcher paired with its per-site rule id and site description.
type PanicSite = (fn(&str) -> Option<usize>, &'static str, &'static str);

/// The per-site panic matchers, their rule ids, and site descriptions.
const PANIC_SITES: [PanicSite; 4] = [
    (rules::match_unwrap, "panic-unwrap", "unwrap()"),
    (rules::match_expect, "panic-expect", "expect()"),
    (rules::match_panic_macro, "panic-macro", "panicking macro"),
    (
        rules::match_slice_index,
        "panic-slice-index",
        "non-literal slice index",
    ),
];

fn panic_reach(
    files: &[FileData],
    ranges: &[Vec<(usize, usize, usize)>],
    graph: &callgraph::CallGraph,
    rule: &Rule,
    config: &Config,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // Two entry tiers: public APIs of the library crates (errors), and
    // public/`main` functions of the relaxed tier (warnings).
    let mut entries_err = Vec::new();
    let mut entries_warn = Vec::new();
    for (f, file) in files.iter().enumerate() {
        for (i, item) in file.symbols.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            match rule.severity_at(&file.path) {
                Some(Severity::Error) if item.is_pub => entries_err.push((f, i)),
                Some(Severity::Warn) if item.is_pub || item.name == "main" => {
                    entries_warn.push((f, i));
                }
                _ => {}
            }
        }
    }
    let reach_err = graph.reach(&entries_err);
    let reach_warn = graph.reach(&entries_warn);

    for (f, file) in files.iter().enumerate() {
        let Some(file_severity) = rule.severity_at(&file.path) else {
            continue;
        };
        for (l, code) in file.masked.code.iter().enumerate() {
            if is_test_line(file, l) {
                continue;
            }
            for (matcher, site_rule, what) in PANIC_SITES {
                let Some(col) = matcher(code) else {
                    continue;
                };
                if site_allowed(file, l, &[rule.id, site_rule], config) {
                    continue;
                }
                let Some(i) = fn_at(&ranges[f], l) else {
                    continue;
                };
                let item = &file.symbols.fns[i];
                // Direct sites in public fns are the per-site rules' job;
                // this rule is about aborts that cross a privacy boundary.
                if item.is_pub || item.is_test {
                    continue;
                }
                let id = (f, i);
                let hit = |r: &Reachability| r.contains(id) && !r.is_entry(id);
                let (reach, severity) = if hit(&reach_err) {
                    (&reach_err, file_severity)
                } else if hit(&reach_warn) {
                    (&reach_warn, Severity::Warn)
                } else {
                    continue;
                };
                let chain = reach.path_to(id);
                let entry = symbol_name(files, chain[0]);
                let mut path = chain_steps(files, &chain);
                path.push(PathStep {
                    symbol: format!("panic site: {what}"),
                    file: file.path.clone(),
                    line: l + 1,
                });
                diagnostics.push(Diagnostic {
                    rule: rule.id.into(),
                    severity,
                    file: file.path.clone(),
                    line: l + 1,
                    column: col + 1,
                    message: format!(
                        "{what} in private `{}` is reachable from public API \
                         `{entry}` ({} call step(s) away)",
                        symbol_name(files, id),
                        chain.len() - 1
                    ),
                    hint: rules::oneline(rule.hint),
                    path,
                });
            }
        }
    }
}

// -------------------------------------------------------- obs-name-registry

fn obs_name_registry(
    files: &[FileData],
    sigs: &[Vec<usize>],
    ranges: &[Vec<(usize, usize, usize)>],
    rule: &Rule,
    config: &Config,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // The registry is the source of truth; without it (e.g. single-file
    // fixture runs) the rule has nothing to resolve against.
    let Some(registry) = files.iter().find(|f| f.path == rules::OBS_NAMES_REGISTRY) else {
        return;
    };
    let values: BTreeSet<&str> = registry
        .symbols
        .consts
        .iter()
        .map(|c| c.value.as_str())
        .collect();
    let names: BTreeSet<&str> = registry
        .symbols
        .consts
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let methods: Vec<&str> = rules::OBS_RECORDING_CALLS
        .iter()
        .map(|c| c.trim_start_matches('.').trim_end_matches('('))
        .collect();

    for (f, file) in files.iter().enumerate() {
        if file.path == rules::OBS_NAMES_REGISTRY {
            continue;
        }
        let Some(severity) = rule.severity_at(&file.path) else {
            continue;
        };
        let sig = &sigs[f];
        let text = |k: usize| file.tokens[sig[k]].text(&file.source);
        for k in 1..sig.len() {
            // Pattern A: `. method (` — the name is the next argument.
            // Pattern B: `Ctor :: new (` for the named constructors
            // (burn-rate rules, stream lines) — same position.
            let arg_at = if file.tokens[sig[k]].kind == TokenKind::Ident
                && methods.contains(&text(k))
                && text(k - 1) == "."
                && k + 2 < sig.len()
                && text(k + 1) == "("
            {
                k + 2
            } else if file.tokens[sig[k]].kind == TokenKind::Ident
                && rules::OBS_NAMED_CONSTRUCTORS.contains(&text(k))
                && k + 5 < sig.len()
                && text(k + 1) == ":"
                && text(k + 2) == ":"
                && text(k + 3) == "new"
                && text(k + 4) == "("
            {
                k + 5
            } else {
                continue;
            };
            let arg = &file.tokens[sig[arg_at]];
            if is_test_line(file, arg.line)
                || site_allowed(file, arg.line, &[rule.id, "obs-static-name"], config)
            {
                continue;
            }
            let finding = match arg.kind {
                TokenKind::Str | TokenKind::RawStr => lex::literal_content(arg, &file.source)
                    .and_then(|value| {
                        (!values.contains(value)).then(|| {
                            format!(
                                "metric/span name \"{value}\" is not declared in the \
                                 obs name registry ({})",
                                rules::OBS_NAMES_REGISTRY
                            )
                        })
                    }),
                TokenKind::Ident => {
                    // Walk the `a::b::CONST` path; only a pure path whose
                    // terminal segment looks like a constant is checked —
                    // computed expressions are obs-static-name's job.
                    let mut j = arg_at;
                    while j + 3 < sig.len()
                        && text(j + 1) == ":"
                        && text(j + 2) == ":"
                        && file.tokens[sig[j + 3]].kind == TokenKind::Ident
                    {
                        j += 3;
                    }
                    let terminal = text(j);
                    let pure_path = j + 1 < sig.len() && matches!(text(j + 1), ")" | ",");
                    let is_const = terminal
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                        && terminal.chars().any(|c| c.is_ascii_uppercase());
                    (pure_path && is_const && !names.contains(terminal)).then(|| {
                        format!(
                            "name constant `{terminal}` is not declared in the obs \
                             name registry ({})",
                            rules::OBS_NAMES_REGISTRY
                        )
                    })
                }
                _ => None,
            };
            let Some(message) = finding else {
                continue;
            };
            let mut path = Vec::new();
            if let Some(i) = fn_at(&ranges[f], arg.line) {
                path.push(PathStep {
                    symbol: symbol_name(files, (f, i)),
                    file: file.path.clone(),
                    line: file.symbols.fns[i].line + 1,
                });
            }
            path.push(PathStep {
                symbol: "obs name registry".into(),
                file: rules::OBS_NAMES_REGISTRY.into(),
                line: 1,
            });
            diagnostics.push(Diagnostic {
                rule: rule.id.into(),
                severity,
                file: file.path.clone(),
                line: arg.line + 1,
                column: arg.col + 1,
                message,
                hint: rules::oneline(rule.hint),
                path,
            });
        }
    }
}
