//! Diagnostic rendering: human text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (the vendored `serde_json` is a
//! dev-facing stand-in and `xtask` stays dependency-free); the shape is
//! stable so CI and editors can consume it:
//!
//! ```json
//! {"version":1,"files_scanned":34,"violations":1,
//!  "diagnostics":[{"rule":"panic-unwrap","file":"crates/qos/src/cos.rs",
//!                  "line":10,"column":5,"message":"...","hint":"..."}]}
//! ```

/// One rule violation at a source location (1-based line and column).
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Rule id, e.g. `panic-unwrap`.
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
    /// How to fix or justify it.
    pub hint: String,
}

/// Renders diagnostics as `file:line:col [rule] message` lines plus a
/// summary, matching the compiler-style format editors already parse.
pub fn render_text(diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&format!(
            "{}:{}:{} [{}] {}\n    hint: {}\n",
            d.file, d.line, d.column, d.rule, d.message, d.hint
        ));
    }
    out.push_str(&format!(
        "xtask lint: {} violation(s) in {} file(s) scanned\n",
        diagnostics.len(),
        files_scanned
    ));
    out
}

/// Renders the stable JSON shape described in the module docs.
pub fn render_json(diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{");
    out.push_str("\"version\":1,");
    out.push_str(&format!("\"files_scanned\":{files_scanned},"));
    out.push_str(&format!("\"violations\":{},", diagnostics.len()));
    out.push_str("\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"column\":{},\
             \"message\":\"{}\",\"hint\":\"{}\"}}",
            escape(&d.rule),
            escape(&d.file),
            d.line,
            d.column,
            escape(&d.message),
            escape(&d.hint)
        ));
    }
    out.push_str("]}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "panic-unwrap".into(),
            file: "crates/qos/src/cos.rs".into(),
            line: 7,
            column: 13,
            message: "unwrap() in a library crate".into(),
            hint: "propagate with `?`".into(),
        }
    }

    #[test]
    fn json_contains_rule_location_and_counts() {
        let json = render_json(&[sample()], 3);
        assert!(json.contains("\"rule\":\"panic-unwrap\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"column\":13"));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\"violations\":1"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut d = sample();
        d.message = "say \"hi\"\nnext".into();
        let json = render_json(&[d], 1);
        assert!(json.contains("say \\\"hi\\\"\\nnext"));
    }

    #[test]
    fn text_summarizes() {
        let text = render_text(&[sample()], 3);
        assert!(text.contains("crates/qos/src/cos.rs:7:13 [panic-unwrap]"));
        assert!(text.contains("1 violation(s) in 3 file(s)"));
    }
}
