//! Diagnostic rendering: human text, machine-readable JSON, and SARIF.
//!
//! The JSON and SARIF writers are hand-rolled (the vendored `serde_json`
//! is a dev-facing stand-in and `xtask` stays dependency-free); the JSON
//! shape is stable so CI and editors can consume it:
//!
//! ```json
//! {"version":2,"files_scanned":34,"violations":1,"warnings":0,
//!  "diagnostics":[{"rule":"panic-unwrap","severity":"error",
//!                  "file":"crates/qos/src/cos.rs","line":10,"column":5,
//!                  "message":"...","hint":"...","path":[]}]}
//! ```
//!
//! `violations` counts errors only — warnings (the relaxed cli/examples
//! tier) never gate. The SARIF output targets the 2.1.0 schema with
//! `codeFlows` carrying the call-path evidence of the graph rules, so
//! code hosts can render "how does the entry point reach this line".

use crate::callgraph::PathStep;
use crate::rules::{self, Severity};

/// One rule violation at a source location (1-based line and column).
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Rule id, e.g. `panic-unwrap`.
    pub rule: String,
    /// Error (gates CI) or warning (relaxed tier).
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
    /// How to fix or justify it.
    pub hint: String,
    /// Call-path evidence (graph rules): entry point first, sink last.
    /// Empty for per-line rules.
    pub path: Vec<PathStep>,
}

/// The number of error-severity diagnostics.
pub fn error_count(diagnostics: &[Diagnostic]) -> usize {
    diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Renders diagnostics as `file:line:col severity[rule] message` lines
/// (call-path evidence indented beneath) plus a summary, matching the
/// compiler-style format editors already parse.
pub fn render_text(diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&format!(
            "{}:{}:{} {}[{}] {}\n    hint: {}\n",
            d.file,
            d.line,
            d.column,
            d.severity.label(),
            d.rule,
            d.message,
            d.hint
        ));
        for (i, step) in d.path.iter().enumerate() {
            let arrow = if i == 0 { "path:" } else { "  ->" };
            out.push_str(&format!(
                "    {arrow} {} ({}:{})\n",
                step.symbol, step.file, step.line
            ));
        }
    }
    let errors = error_count(diagnostics);
    out.push_str(&format!(
        "xtask lint: {} error(s), {} warning(s) in {} file(s) scanned\n",
        errors,
        diagnostics.len() - errors,
        files_scanned
    ));
    out
}

/// Renders the stable JSON shape described in the module docs.
pub fn render_json(diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let errors = error_count(diagnostics);
    let mut out = String::from("{");
    out.push_str("\"version\":2,");
    out.push_str(&format!("\"files_scanned\":{files_scanned},"));
    out.push_str(&format!("\"violations\":{errors},"));
    out.push_str(&format!("\"warnings\":{},", diagnostics.len() - errors));
    out.push_str("\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\
             \"line\":{},\"column\":{},\"message\":\"{}\",\"hint\":\"{}\",\
             \"path\":[{}]}}",
            escape(&d.rule),
            d.severity.label(),
            escape(&d.file),
            d.line,
            d.column,
            escape(&d.message),
            escape(&d.hint),
            d.path
                .iter()
                .map(|s| format!(
                    "{{\"symbol\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                    escape(&s.symbol),
                    escape(&s.file),
                    s.line
                ))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a minimal SARIF 2.1.0 log: one run, the rule registry as the
/// tool's rule metadata, one result per diagnostic, and a `codeFlow` per
/// non-empty call path.
pub fn render_sarif(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"xtask-lint\",\"rules\":[",
    );
    for (i, rule) in rules::registry().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"help\":{{\"text\":\"{}\"}}}}",
            escape(rule.id),
            escape(&rules::oneline(rule.summary)),
            escape(&rules::oneline(rule.hint))
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{}]",
            escape(&d.rule),
            escape(&d.message),
            sarif_location(&d.file, d.line, d.column, None)
        ));
        if !d.path.is_empty() {
            out.push_str(",\"codeFlows\":[{\"threadFlows\":[{\"locations\":[");
            for (j, step) in d.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"location\":{}}}",
                    sarif_location(&step.file, step.line, 1, Some(&step.symbol))
                ));
            }
            out.push_str("]}]}]");
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

fn sarif_location(file: &str, line: usize, column: usize, message: Option<&str>) -> String {
    let message = message.map_or(String::new(), |m| {
        format!(",\"message\":{{\"text\":\"{}\"}}", escape(m))
    });
    format!(
        "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{line},\"startColumn\":{column}}}}}{message}}}",
        escape(file)
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "panic-unwrap".into(),
            severity: Severity::Error,
            file: "crates/qos/src/cos.rs".into(),
            line: 7,
            column: 13,
            message: "unwrap() in a library crate".into(),
            hint: "propagate with `?`".into(),
            path: Vec::new(),
        }
    }

    fn with_path() -> Diagnostic {
        let mut d = sample();
        d.rule = "panic-reach".into();
        d.path = vec![
            PathStep {
                symbol: "CosTranslator::translate".into(),
                file: "crates/qos/src/translation.rs".into(),
                line: 3,
            },
            PathStep {
                symbol: "helper".into(),
                file: "crates/qos/src/cos.rs".into(),
                line: 6,
            },
        ];
        d
    }

    #[test]
    fn json_contains_rule_location_and_counts() {
        let json = render_json(&[sample()], 3);
        assert!(json.contains("\"rule\":\"panic-unwrap\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"column\":13"));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\"violations\":1"));
        assert!(json.contains("\"warnings\":0"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut d = sample();
        d.message = "say \"hi\"\nnext".into();
        let json = render_json(&[d], 1);
        assert!(json.contains("say \\\"hi\\\"\\nnext"));
    }

    #[test]
    fn json_carries_the_call_path() {
        let json = render_json(&[with_path()], 1);
        assert!(json.contains("\"path\":[{\"symbol\":\"CosTranslator::translate\""));
        assert!(json.contains("\"file\":\"crates/qos/src/translation.rs\",\"line\":3"));
    }

    #[test]
    fn text_summarizes_and_shows_paths() {
        let mut d = with_path();
        d.severity = Severity::Warn;
        let text = render_text(&[sample(), d], 3);
        assert!(text.contains("crates/qos/src/cos.rs:7:13 error[panic-unwrap]"));
        assert!(text.contains("path: CosTranslator::translate (crates/qos/src/translation.rs:3)"));
        assert!(text.contains("-> helper (crates/qos/src/cos.rs:6)"));
        assert!(text.contains("1 error(s), 1 warning(s) in 3 file(s)"));
    }

    #[test]
    fn sarif_has_schema_results_and_code_flows() {
        let sarif = render_sarif(&[with_path()]);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"xtask-lint\""));
        assert!(sarif.contains("\"ruleId\":\"panic-reach\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"codeFlows\""));
        assert!(sarif.contains("\"text\":\"CosTranslator::translate\""));
        // Every registered rule appears in the driver metadata.
        assert!(sarif.contains("\"id\":\"det-taint\""));
    }
}
