//! Workspace symbol table: every `fn` item (free or associated), plus
//! `const` string declarations, extracted from the token stream.
//!
//! The extractor is a single linear pass over significant tokens with an
//! explicit brace stack — no full parser, no type checker. It records,
//! for each function: its name, the self type of the `impl` block it sits
//! directly inside (the *receiver hint* used by call resolution), its
//! declaration line, whether it is `pub`, whether it sits in test code,
//! and the token range of its body. Known approximations are documented
//! on [`FnItem`] and in DESIGN.md §5g: trait dispatch is resolved by
//! name, macros are opaque, and nested items inside function bodies
//! are recorded as free functions.

use crate::lex::{Token, TokenKind};

/// One function item found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type of the directly enclosing `impl` block, if any — the
    /// receiver hint used to narrow method-call resolution.
    pub qual: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item is `pub` (unrestricted — `pub(crate)` and
    /// narrower do not count as public API).
    pub is_pub: bool,
    /// Whether the declaration line sits inside a `#[cfg(test)]` region
    /// (or the whole file is test code).
    pub is_test: bool,
    /// Range of the body block over *significant* token indices (the
    /// [`significant`] projection), excluding the outer braces; empty for
    /// trait-declaration signatures ending in `;`.
    pub body: std::ops::Range<usize>,
}

/// One `const NAME: … = "literal";` string declaration.
#[derive(Clone, Debug)]
pub struct ConstStr {
    /// The constant's identifier.
    pub name: String,
    /// The string literal it is bound to.
    pub value: String,
    /// 0-based line of the `const` keyword.
    pub line: usize,
}

/// All symbols extracted from one file.
#[derive(Default, Debug)]
pub struct FileSymbols {
    /// Repo-relative path with forward slashes (set by the caller).
    pub path: String,
    /// Function items in declaration order.
    pub fns: Vec<FnItem>,
    /// String constants in declaration order.
    pub consts: Vec<ConstStr>,
}

/// Indices of non-whitespace, non-comment tokens — the stream structure
/// passes operate on.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect()
}

/// Extracts the symbols of one file. `in_test` is the per-line
/// `#[cfg(test)]` flag vector from [`crate::scan::mask_tokens`];
/// `whole_file_test` marks integration-test files where every item is
/// test code regardless of attributes.
pub fn extract(
    source: &str,
    tokens: &[Token],
    in_test: &[bool],
    whole_file_test: bool,
) -> FileSymbols {
    let sig = significant(tokens);
    let text = |k: usize| tokens[sig[k]].text(source);
    let is = |k: usize, s: &str| k < sig.len() && text(k) == s;

    let mut symbols = FileSymbols::default();
    // Brace stack: the impl self-type introduced by each open `{`, if the
    // block is an impl block.
    let mut stack: Vec<Option<String>> = Vec::new();
    // Impl type waiting for its opening brace.
    let mut pending_impl: Option<Option<String>> = None;

    let mut k = 0usize;
    while k < sig.len() {
        let token = tokens[sig[k]];
        match token.kind {
            TokenKind::Punct => {
                match text(k) {
                    "{" => {
                        stack.push(pending_impl.take().flatten());
                    }
                    "}" => {
                        stack.pop();
                    }
                    _ => {}
                }
                k += 1;
            }
            TokenKind::Ident if text(k) == "impl" => {
                let (self_type, next) = parse_impl_type(source, tokens, &sig, k + 1);
                pending_impl = Some(self_type);
                k = next;
            }
            TokenKind::Ident if text(k) == "fn" => {
                let Some(name_k) = (k + 1 < sig.len()).then_some(k + 1) else {
                    k += 1;
                    continue;
                };
                if tokens[sig[name_k]].kind != TokenKind::Ident {
                    // `fn(...)` pointer type, not a declaration.
                    k += 1;
                    continue;
                }
                let name = text(name_k).to_string();
                let line = token.line;
                let is_pub = decl_is_pub(source, tokens, &sig, k);
                let is_test = whole_file_test || in_test.get(line).copied().unwrap_or(false);
                // Inside a fn body the enclosing stack frame is None, so
                // nested fns correctly read as free functions.
                let qual = stack.last().cloned().flatten();
                let (body, next) = parse_body(source, tokens, &sig, name_k + 1);
                symbols.fns.push(FnItem {
                    name,
                    qual,
                    line,
                    is_pub,
                    is_test,
                    body,
                });
                k = next;
            }
            TokenKind::Ident if text(k) == "const" => {
                // `const NAME: … = "literal";` — only string consts are
                // recorded (the obs name registry shape).
                if k + 1 < sig.len() && tokens[sig[k + 1]].kind == TokenKind::Ident {
                    let name = text(k + 1).to_string();
                    let mut j = k + 2;
                    let mut value = None;
                    while j < sig.len() && !is(j, ";") && !is(j, "{") {
                        if tokens[sig[j]].kind == TokenKind::Str
                            || tokens[sig[j]].kind == TokenKind::RawStr
                        {
                            value = crate::lex::literal_content(&tokens[sig[j]], source)
                                .map(str::to_string);
                            break;
                        }
                        j += 1;
                    }
                    if let Some(value) = value {
                        symbols.consts.push(ConstStr {
                            name,
                            value,
                            line: token.line,
                        });
                    }
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    symbols
}

/// Parses the self type of an `impl` header starting at significant index
/// `k` (just past `impl`). Returns the type name and the index of the
/// opening `{` (or wherever scanning stopped).
///
/// `impl<T> Foo<T>` → `Foo`; `impl Trait for Bar` → `Bar`;
/// `impl fmt::Debug for a::b::Baz<'_>` → `Baz`.
fn parse_impl_type(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    mut k: usize,
) -> (Option<String>, usize) {
    let text = |k: usize| tokens[sig[k]].text(source);
    // Skip the generic parameter list directly after `impl`.
    if k < sig.len() && text(k) == "<" {
        let mut depth = 0i32;
        while k < sig.len() {
            match text(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    // Collect path idents until `{` / `where`, restarting at `for`: the
    // last path segment before generics is the self type.
    let mut current: Option<String> = None;
    let mut depth = 0i32;
    while k < sig.len() {
        let t = text(k);
        match t {
            "{" if depth == 0 => break,
            "where" if depth == 0 => break,
            "for" if depth == 0 => current = None,
            "<" => depth += 1,
            ">" => depth -= 1,
            _ => {
                if tokens[sig[k]].kind == TokenKind::Ident && depth == 0 && t != "dyn" {
                    current = Some(t.to_string());
                }
            }
        }
        k += 1;
    }
    (current, k)
}

/// Whether the `fn` at significant index `fn_k` is preceded by an
/// unrestricted `pub`. Scans back across modifier keywords only.
fn decl_is_pub(source: &str, tokens: &[Token], sig: &[usize], fn_k: usize) -> bool {
    let text = |k: usize| tokens[sig[k]].text(source);
    let mut k = fn_k;
    while k > 0 {
        k -= 1;
        match text(k) {
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // The `(crate)` of a restricted pub — skip back past it.
                let mut depth = 1i32;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match text(k) {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                // A pub directly before this paren group is restricted.
                if k > 0 && text(k - 1) == "pub" {
                    return false;
                }
                return false;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Finds the body block of the declaration whose signature starts at
/// significant index `k` (just past the fn name). Returns the significant
/// token range *inside* the braces and the index to resume scanning from
/// (*at* the opening brace, so the main loop's brace stack stays balanced
/// and nested items are still visited).
fn parse_body(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    mut k: usize,
) -> (std::ops::Range<usize>, usize) {
    let text = |k: usize| tokens[sig[k]].text(source);
    // Scan the signature for the opening `{` or a terminating `;`.
    // Parens and angle brackets are tracked so `;` inside const-generic
    // defaults or `(..)` never terminates early.
    let mut paren = 0i32;
    let mut angle = 0i32;
    while k < sig.len() {
        match text(k) {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "->" => {}
            ";" if paren == 0 => return (k..k, k + 1),
            "{" if paren == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= sig.len() {
        return (k..k, k);
    }
    // Find the matching close brace.
    let open = k;
    let mut depth = 0i32;
    while k < sig.len() {
        match text(k) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (open + 1..k, open);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (open + 1..sig.len(), open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::scan;

    fn symbols_of(source: &str) -> FileSymbols {
        let tokens = lex(source);
        let masked = scan::mask_tokens(source, &tokens);
        extract(source, &tokens, &masked.in_test, false)
    }

    #[test]
    fn finds_free_and_associated_fns_with_visibility() {
        let s = symbols_of(
            "pub fn api() {}\nfn helper() {}\npub(crate) fn internal() {}\n\
             impl FitEngine {\n    pub fn evaluate(&self) { helper(); }\n}\n\
             impl fmt::Debug for Report<'_> {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = s
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.qual.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("api", None, true),
                ("helper", None, false),
                ("internal", None, false),
                ("evaluate", Some("FitEngine"), true),
                ("fmt", Some("Report"), false),
            ]
        );
    }

    #[test]
    fn records_const_strings_and_test_flags() {
        let s = symbols_of(
            "pub const NAME: &str = \"qos.translations\";\n\
             #[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert_eq!(s.consts.len(), 1);
        assert_eq!(s.consts[0].name, "NAME");
        assert_eq!(s.consts[0].value, "qos.translations");
        assert!(s.fns.iter().any(|f| f.name == "t" && f.is_test));
    }

    #[test]
    fn trait_signatures_have_empty_bodies() {
        let s = symbols_of("trait Clock {\n    fn now_ms(&self) -> f64;\n    fn noop() {}\n}\n");
        let now = s.fns.iter().find(|f| f.name == "now_ms").unwrap();
        assert!(now.body.is_empty());
        let noop = s.fns.iter().find(|f| f.name == "noop").unwrap();
        assert!(!noop.body.is_empty() || noop.body.start > now.body.start);
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let s = symbols_of(
            "impl<'a, T: Clone> Session<'a, T> {\n    fn tick(&self) {}\n}\n\
             impl<T> From<T> for Wrapper<T> where T: Copy {\n    fn from(_: T) -> Self { todo!() }\n}\n",
        );
        assert_eq!(s.fns[0].qual.as_deref(), Some("Session"));
        assert_eq!(s.fns[1].qual.as_deref(), Some("Wrapper"));
    }
}
