//! Workspace invariant linter for the R-Opus reproduction.
//!
//! Run as `cargo run -p xtask -- lint`. The linter walks `crates/*/src`
//! (excluding itself) and enforces repo-specific invariants that clippy
//! cannot express — determinism of scoring and reports, panic-freedom of
//! library crates, and unit-safety of the QoS formula modules. See
//! [`rules::registry`] for the rule set and DESIGN.md §5b for the mapping
//! from each rule to the paper property it protects.
//!
//! Two suppression mechanisms exist, both requiring a recorded reason:
//!
//! * inline: `// lint:allow(rule-id): justification` on the offending
//!   line or the comment line(s) directly above it;
//! * per-file: a `rule-id = ["path", ...]` entry in `crates/xtask/lints.toml`
//!   (with a TOML comment explaining why the whole file is exempt).
//!
//! The library form exists so the fixture tests can lint snippets under
//! *virtual* paths (rule scopes are path-based) without touching the
//! filesystem walker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod rules;
pub mod scan;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use config::Config;
use report::Diagnostic;

/// Lints one source text as if it lived at `path` (repo-relative, with
/// forward slashes). Pure: no filesystem access.
pub fn lint_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let masked = scan::mask(source);
    let registry = rules::registry();
    let allow_refs = scan::parse_allows(&masked.comments);

    // Per-line sets of validly allowed rule ids.
    let mut allowed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); masked.code.len()];
    let mut diagnostics = Vec::new();
    for reference in &allow_refs {
        let ok =
            reference.well_formed && reference.has_reason && rules::is_known_rule(&reference.rule);
        if ok {
            if let Some(set) = allowed.get_mut(reference.line) {
                set.insert(reference.rule.clone());
            }
        } else if !config.allows("lint-allow-syntax", path) {
            let detail = if !reference.well_formed {
                "missing closing parenthesis".to_string()
            } else if !rules::is_known_rule(&reference.rule) {
                format!("unknown rule id `{}`", reference.rule)
            } else {
                "missing `: justification` after the marker".to_string()
            };
            diagnostics.push(Diagnostic {
                rule: "lint-allow-syntax".into(),
                file: path.to_string(),
                line: reference.line + 1,
                column: 1,
                message: format!("malformed lint:allow marker: {detail}"),
                hint: "write `lint:allow(<rule-id>): <why the invariant holds>`".into(),
            });
        }
    }

    for rule in &registry {
        if !rule.scope.contains(path) || config.allows(rule.id, path) {
            continue;
        }
        for (index, code) in masked.code.iter().enumerate() {
            if rule.exempt_tests && masked.in_test[index] {
                continue;
            }
            let Some(column) = (rule.matcher)(code) else {
                continue;
            };
            if line_allows(&allowed, &masked.code, index, rule.id) {
                continue;
            }
            diagnostics.push(Diagnostic {
                rule: rule.id.into(),
                file: path.to_string(),
                line: index + 1,
                column: column + 1,
                message: rule
                    .summary
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" "),
                hint: rule.hint.split_whitespace().collect::<Vec<_>>().join(" "),
            });
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.line, a.column, a.rule.as_str()).cmp(&(b.line, b.column, b.rule.as_str()))
    });
    diagnostics
}

/// A `lint:allow` applies on its own line or from the contiguous run of
/// code-blank (comment or empty) lines directly above the flagged line.
fn line_allows(allowed: &[BTreeSet<String>], code: &[String], line: usize, rule: &str) -> bool {
    if allowed[line].contains(rule) {
        return true;
    }
    let mut above = line;
    while above > 0 {
        above -= 1;
        if !code[above].trim().is_empty() {
            return false;
        }
        if allowed[above].contains(rule) {
            return true;
        }
    }
    false
}

/// Result of a workspace walk: diagnostics plus the scan size.
pub struct WorkspaceReport {
    /// All diagnostics, sorted by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Walks `root/crates/*/src` (excluding `crates/xtask` itself — its rule
/// table *names* the banned tokens; its correctness is covered by the
/// fixture tests) and lints every `.rs` file in deterministic path order.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<WorkspaceReport, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let relative = relative_path(root, file);
        diagnostics.extend(lint_source(&relative, &source, config));
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule.as_str(),
        ))
    });
    Ok(WorkspaceReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
