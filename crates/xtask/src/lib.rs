//! Workspace invariant linter for the R-Opus reproduction.
//!
//! Run as `cargo run -p xtask -- lint`. The linter walks `crates/*/src`
//! (excluding itself) plus `examples/` and `tests/`, and enforces
//! repo-specific invariants that clippy cannot express — determinism of
//! scoring and reports, panic-freedom of library crates, unit-safety of
//! the QoS formula modules, and consistency of the observability name
//! vocabulary. See [`rules::registry`] for the rule set and DESIGN.md
//! §5b/§5g for the mapping from each rule to the paper property it
//! protects.
//!
//! The analysis is token-level, not regex-over-text: every file is lexed
//! once by the lossless [`lex`] module, the masked per-line view for the
//! textual rules is a projection of that token stream ([`scan`]), and the
//! cross-function rules run on a workspace symbol table ([`symbols`]) and
//! an approximate call graph ([`callgraph`]) in the [`analyze`] pass.
//!
//! Two suppression mechanisms exist, both requiring a recorded reason:
//!
//! * inline: `// lint:allow(rule-id): justification` on the offending
//!   line or the comment line(s) directly above it;
//! * per-file: a `rule-id = ["path", ...]` entry in `crates/xtask/lints.toml`
//!   (with a TOML comment explaining why the whole file is exempt).
//!
//! The library form exists so the fixture tests can lint snippets under
//! *virtual* paths (rule scopes are path-based) without touching the
//! filesystem walker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod callgraph;
pub mod config;
pub mod fixtures;
pub mod lex;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use config::Config;
use report::Diagnostic;

/// One source file to lint, addressed by a repo-relative virtual path
/// (rule scopes and the call graph's module resolution are path-based).
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The file's source text.
    pub source: String,
}

/// Whether a path is an integration-test file: everything under a
/// top-level or crate-level `tests/` directory is test code wholesale
/// (no `#[cfg(test)]` attribute required).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Lints one source text as if it lived at `path` (repo-relative, with
/// forward slashes). Pure: no filesystem access. Runs the per-line
/// textual rules only — the call-graph families need the whole
/// workspace; use [`lint_files`] to run them over a file set.
pub fn lint_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let tokens = lex::lex(source);
    let masked = scan::mask_tokens(source, &tokens);
    let whole_file_test = is_test_path(path);
    let (allowed, mut diagnostics) = allow_table(path, &masked, config);
    diagnostics.extend(textual_pass(
        path,
        &masked,
        &allowed,
        whole_file_test,
        config,
    ));
    sort_diagnostics(&mut diagnostics);
    diagnostics
}

/// Lints a set of files together: the per-line textual rules on each
/// file, then the call-graph families ([`analyze::graph_rules`]) across
/// the whole set. Pure: no filesystem access.
pub fn lint_files(files: &[SourceFile], config: &Config) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut data = Vec::with_capacity(files.len());
    for file in files {
        let tokens = lex::lex(&file.source);
        let masked = scan::mask_tokens(&file.source, &tokens);
        let whole_file_test = is_test_path(&file.path);
        let (allowed, allow_diags) = allow_table(&file.path, &masked, config);
        diagnostics.extend(allow_diags);
        diagnostics.extend(textual_pass(
            &file.path,
            &masked,
            &allowed,
            whole_file_test,
            config,
        ));
        let mut symbols = symbols::extract(&file.source, &tokens, &masked.in_test, whole_file_test);
        symbols.path = file.path.clone();
        data.push(analyze::FileData {
            path: file.path.clone(),
            source: file.source.clone(),
            tokens,
            masked,
            allowed,
            symbols,
            whole_file_test,
        });
    }
    diagnostics.extend(analyze::graph_rules(&data, config));
    sort_diagnostics(&mut diagnostics);
    diagnostics
}

/// Builds the per-line table of validly allowed rule ids, reporting
/// malformed markers as `lint-allow-syntax` diagnostics.
fn allow_table(
    path: &str,
    masked: &scan::Masked,
    config: &Config,
) -> (Vec<BTreeSet<String>>, Vec<Diagnostic>) {
    let allow_refs = scan::parse_allows(&masked.comments);
    let mut allowed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); masked.code.len()];
    let mut diagnostics = Vec::new();
    for reference in &allow_refs {
        let ok =
            reference.well_formed && reference.has_reason && rules::is_known_rule(&reference.rule);
        if ok {
            if let Some(set) = allowed.get_mut(reference.line) {
                set.insert(reference.rule.clone());
            }
        } else if !config.allows("lint-allow-syntax", path) {
            let detail = if !reference.well_formed {
                "missing closing parenthesis".to_string()
            } else if !rules::is_known_rule(&reference.rule) {
                format!("unknown rule id `{}`", reference.rule)
            } else {
                "missing `: justification` after the marker".to_string()
            };
            diagnostics.push(Diagnostic {
                rule: "lint-allow-syntax".into(),
                severity: rules::Severity::Error,
                file: path.to_string(),
                line: reference.line + 1,
                column: 1,
                message: format!("malformed lint:allow marker: {detail}"),
                hint: "write `lint:allow(<rule-id>): <why the invariant holds>`".into(),
                path: Vec::new(),
            });
        }
    }
    (allowed, diagnostics)
}

/// Runs every per-line (non-graph) rule over one masked file.
fn textual_pass(
    path: &str,
    masked: &scan::Masked,
    allowed: &[BTreeSet<String>],
    whole_file_test: bool,
    config: &Config,
) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for rule in &rules::registry() {
        if rule.graph || config.allows(rule.id, path) {
            continue;
        }
        let Some(severity) = rule.severity_at(path) else {
            continue;
        };
        for (index, code) in masked.code.iter().enumerate() {
            if rule.exempt_tests && (whole_file_test || masked.in_test[index]) {
                continue;
            }
            let Some(column) = (rule.matcher)(code) else {
                continue;
            };
            if line_allows(allowed, &masked.code, index, rule.id) {
                continue;
            }
            diagnostics.push(Diagnostic {
                rule: rule.id.into(),
                severity,
                file: path.to_string(),
                line: index + 1,
                column: column + 1,
                message: rules::oneline(rule.summary),
                hint: rules::oneline(rule.hint),
                path: Vec::new(),
            });
        }
    }
    diagnostics
}

/// A `lint:allow` applies on its own line or from the contiguous run of
/// code-blank (comment or empty) lines directly above the flagged line.
pub(crate) fn line_allows(
    allowed: &[BTreeSet<String>],
    code: &[String],
    line: usize,
    rule: &str,
) -> bool {
    if allowed.get(line).is_some_and(|set| set.contains(rule)) {
        return true;
    }
    let mut above = line;
    while above > 0 {
        above -= 1;
        if !code[above].trim().is_empty() {
            return false;
        }
        if allowed[above].contains(rule) {
            return true;
        }
    }
    false
}

fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule.as_str(),
        ))
    });
}

/// Result of a workspace walk: diagnostics plus the scan size.
pub struct WorkspaceReport {
    /// All diagnostics, sorted by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// The number of error-severity diagnostics (the CI gate).
    pub fn errors(&self) -> usize {
        report::error_count(&self.diagnostics)
    }
}

/// Walks `root/crates/*/src` (excluding `crates/xtask` itself — its rule
/// table *names* the banned tokens; its correctness is covered by the
/// fixture tests) plus the top-level `examples/` and `tests/` trees, and
/// lints every `.rs` file in deterministic path order — textual rules
/// per file, then the call-graph families across the whole set.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<WorkspaceReport, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
        .collect();
    crate_dirs.sort();

    let mut paths = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut paths)?;
        }
    }
    for extra in ["examples", "tests"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile {
            path: relative_path(root, path),
            source,
        });
    }
    let diagnostics = lint_files(&files, config);
    Ok(WorkspaceReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
