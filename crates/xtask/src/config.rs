//! `lints.toml` parsing — a deliberately tiny TOML subset.
//!
//! The workspace vendors its external crates, so the linter stays
//! dependency-free and parses only what the allowlist file needs:
//! comments, an `[allow]` table, and `rule-id = ["path", ...]` entries
//! (arrays may span lines). Anything else is a hard error — config drift
//! should fail loudly, not silently stop suppressing.

use std::collections::BTreeMap;

/// Parsed allowlists: rule id → repo-relative file paths exempt from it.
#[derive(Default)]
pub struct Config {
    /// Per-rule path allowlists from the `[allow]` table.
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// Whether `path` is allowlisted for `rule`.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|paths| paths.iter().any(|p| p == path))
    }

    /// Parses the `lints.toml` text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut pending: Option<(String, String)> = None; // key, partial array

        for (number, raw) in text.lines().enumerate() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some((key, partial)) = pending.take() {
                let joined = format!("{partial} {line}");
                if array_complete(&joined) {
                    let paths =
                        parse_array(&joined).map_err(|e| format!("line {}: {e}", number + 1))?;
                    config.insert(&section, key, paths, number)?;
                } else {
                    pending = Some((key, joined));
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "allow" {
                    return Err(format!(
                        "line {}: unknown section [{section}] (only [allow] is supported)",
                        number + 1
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = [...]`", number + 1));
            };
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if !value.starts_with('[') {
                return Err(format!(
                    "line {}: value for `{key}` must be an array of path strings",
                    number + 1
                ));
            }
            if array_complete(&value) {
                let paths = parse_array(&value).map_err(|e| format!("line {}: {e}", number + 1))?;
                config.insert(&section, key, paths, number)?;
            } else {
                pending = Some((key, value));
            }
        }
        if let Some((key, _)) = pending {
            return Err(format!("unterminated array for `{key}`"));
        }
        Ok(config)
    }

    fn insert(
        &mut self,
        section: &str,
        key: String,
        paths: Vec<String>,
        number: usize,
    ) -> Result<(), String> {
        if section != "allow" {
            return Err(format!(
                "line {}: entry `{key}` outside the [allow] table",
                number + 1
            ));
        }
        if !crate::rules::is_known_rule(&key) {
            return Err(format!("line {}: unknown rule id `{key}`", number + 1));
        }
        if self.allow.insert(key.clone(), paths).is_some() {
            return Err(format!("line {}: duplicate entry for `{key}`", number + 1));
        }
        Ok(())
    }
}

/// Cuts a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether the brackets of a (comment-stripped) array value balance.
fn array_complete(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in value.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses `[ "a", "b" ]` into its string items.
fn parse_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| "malformed array".to_string())?;
    let mut items = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let path = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("array item `{item}` is not a quoted string"))?;
        items.push(path.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_line_and_multiline_arrays() {
        let config = Config::parse(
            "# comment\n[allow]\npanic-unwrap = [\"crates/a/src/x.rs\"]\n\
             panic-slice-index = [\n  \"crates/b/src/y.rs\", # why\n  \"crates/b/src/z.rs\",\n]\n",
        )
        .unwrap();
        assert!(config.allows("panic-unwrap", "crates/a/src/x.rs"));
        assert!(config.allows("panic-slice-index", "crates/b/src/z.rs"));
        assert!(!config.allows("panic-unwrap", "crates/b/src/y.rs"));
    }

    #[test]
    fn rejects_unknown_rule_and_section() {
        assert!(Config::parse("[allow]\nno-such-rule = []\n").is_err());
        assert!(Config::parse("[deny]\n").is_err());
        assert!(Config::parse("[allow]\npanic-unwrap = \"not-an-array\"\n").is_err());
    }

    #[test]
    fn empty_config_allows_nothing() {
        let config = Config::parse("").unwrap();
        assert!(!config.allows("panic-unwrap", "crates/a/src/x.rs"));
    }
}
