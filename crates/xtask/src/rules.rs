//! The rule registry: each rule is a matcher plus a path scope plus a fix
//! hint.
//!
//! Seven families protect the properties the R-Opus reproduction depends
//! on (see DESIGN.md §5b for the mapping to paper formulas):
//!
//! * **determinism** — CoS1 peak sums (formula 2), the θ min-over-weeks
//!   access probability (formulas 3–5), and the GA placement search must
//!   be bit-reproducible run-to-run, including under PR-1's parallel
//!   `FitEngine`. Besides the per-site textual rules, the call-graph
//!   `det-taint` rule proves the pipeline entry points cannot *reach*
//!   ambient nondeterminism through any call chain;
//! * **panic-freedom** — library crates surface `Result`s; a panic in a
//!   capacity-planning service is an availability bug. `panic-reach`
//!   reports panicking private helpers reachable from public APIs with
//!   the full call path;
//! * **unit-safety** — the QoS translation mixes slots, minutes, weeks,
//!   CPU fractions, and probabilities; bare numeric casts and exact float
//!   equality are where unit bugs hide;
//! * **efficiency** — traces share one immutable `Arc<[f64]>` buffer
//!   (DESIGN.md §5c); deep-copying a sample buffer in a hot path undoes
//!   the zero-copy refactor one call site at a time;
//! * **robustness** — the fault-injection work made every fallible entry
//!   point return a typed error; silently discarding a `Result` throws
//!   that information away and turns failures into wrong answers;
//! * **observability** — span/metric names form the stable vocabulary of
//!   the obs layer (DESIGN.md §5e); names must be literals
//!   (`obs-static-name`) *and* declared in the one registry module
//!   (`obs-name-registry`) so dashboards and the docs never drift;
//! * **meta** — escape-hatch hygiene for the lint machinery itself.
//!
//! Textual matchers run on *masked* lines derived from the lossless
//! token stream (see [`crate::scan`]), so tokens in prose never fire.
//! Call-graph rules (`graph == true`) run in the whole-workspace pass
//! (see [`crate::analyze`]) and attach call-path evidence.

/// Rule family, used for grouping in reports and docs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Family {
    /// Bit-reproducibility of scoring, placement, and reports.
    Determinism,
    /// No panicking operations in library crates.
    PanicFreedom,
    /// No unit-erasing numeric operations in QoS formula code.
    UnitSafety,
    /// No needless deep copies of shared sample buffers.
    Efficiency,
    /// No silently discarded `Result`s in library crates.
    Robustness,
    /// Literal, registry-declared span/metric names in obs calls.
    Observability,
    /// Rules about the lint machinery itself (escape-hatch hygiene).
    Meta,
}

impl Family {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::PanicFreedom => "panic-freedom",
            Family::UnitSafety => "unit-safety",
            Family::Efficiency => "efficiency",
            Family::Robustness => "robustness",
            Family::Observability => "observability",
            Family::Meta => "meta",
        }
    }
}

/// Diagnostic severity: errors gate CI (exit code 2), warnings inform.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// A rule violation in the rule's primary scope.
    Error,
    /// The same finding in the relaxed scope (cli, examples, tests).
    Warn,
}

impl Severity {
    /// Lower-case label used in reports ("error" / "warn").
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// Which files a rule applies to (paths are repo-relative with `/`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Scope {
    /// The seven library crates: `core`, `qos`, `trace`, `placement`,
    /// `wlm`, `chaos`, `obs`.
    LibCrates,
    /// The QoS-translation formula modules (`crates/qos/src`).
    Qos,
    /// Everything scanned except the seeded-RNG facade itself.
    AllButRngFacade,
    /// Everything scanned except the obs clock facade itself.
    AllButClockFacade,
    /// The relaxed tier: the CLI crate, `examples/`, and `tests/` —
    /// production-adjacent code scanned with panic-freedom downgraded
    /// to warnings.
    Relaxed,
    /// Every scanned file.
    All,
}

const LIB_CRATES: [&str; 7] = [
    "crates/core/src/",
    "crates/qos/src/",
    "crates/trace/src/",
    "crates/placement/src/",
    "crates/wlm/src/",
    "crates/chaos/src/",
    "crates/obs/src/",
];

/// The seeded-RNG facade: the one module allowed to implement generators.
pub const RNG_FACADE: &str = "crates/trace/src/rng.rs";

/// The obs clock facade: the one module allowed to read the wall clock.
pub const CLOCK_FACADE: &str = "crates/obs/src/clock.rs";

/// The obs name registry: the one module declaring every metric/span
/// name (the `obs-name-registry` rule's source of truth).
pub const OBS_NAMES_REGISTRY: &str = "crates/obs/src/names.rs";

impl Scope {
    /// Whether `path` falls inside this scope.
    pub fn contains(self, path: &str) -> bool {
        match self {
            Scope::LibCrates => LIB_CRATES.iter().any(|p| path.starts_with(p)),
            Scope::Qos => path.starts_with("crates/qos/src/"),
            Scope::AllButRngFacade => path != RNG_FACADE,
            Scope::AllButClockFacade => path != CLOCK_FACADE,
            Scope::Relaxed => {
                path.starts_with("crates/cli/src/")
                    || path.starts_with("examples/")
                    || path.starts_with("tests/")
            }
            Scope::All => true,
        }
    }

    /// Human-readable scope description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Scope::LibCrates => "library crates (core, qos, trace, placement, wlm, chaos, obs)",
            Scope::Qos => "QoS formula modules (crates/qos/src)",
            Scope::AllButRngFacade => "all crates except the rng facade",
            Scope::AllButClockFacade => "all crates except the obs clock facade",
            Scope::Relaxed => "relaxed tier (crates/cli, examples/, tests/)",
            Scope::All => "all crates",
        }
    }
}

/// One lint rule: identity, scope, and a per-line matcher.
pub struct Rule {
    /// Stable kebab-case id, used in diagnostics, `lint:allow`, and
    /// `lints.toml`.
    pub id: &'static str,
    /// Family the rule belongs to.
    pub family: Family,
    /// One-line statement of the violation.
    pub summary: &'static str,
    /// How to fix (or justify) a hit.
    pub hint: &'static str,
    /// Whether `#[cfg(test)]` code is exempt.
    pub exempt_tests: bool,
    /// Path scope in which a hit is an error.
    pub scope: Scope,
    /// Additional scope in which a hit is only a warning.
    pub warn_scope: Option<Scope>,
    /// Whether the rule runs in the whole-workspace call-graph pass
    /// instead of the per-line matcher loop.
    pub graph: bool,
    /// Returns the 0-based column of the first match on a masked line.
    pub matcher: fn(&str) -> Option<usize>,
}

impl Rule {
    /// The severity a hit carries at `path`, or `None` if out of scope.
    pub fn severity_at(&self, path: &str) -> Option<Severity> {
        if self.scope.contains(path) {
            return Some(Severity::Error);
        }
        if self.warn_scope.is_some_and(|s| s.contains(path)) {
            return Some(Severity::Warn);
        }
        None
    }
}

/// The relaxed warn tier shared by the panic-freedom rules.
const PANIC_WARN: Option<Scope> = Some(Scope::Relaxed);

/// The registry, in report order. Ids are unique and stable.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "det-unordered-collection",
            family: Family::Determinism,
            summary: "HashMap/HashSet in a deterministic path: iteration order is \
                      randomized per process and would make scores, reports, and \
                      placement results run-dependent",
            hint: "use BTreeMap/BTreeSet (or sort before iterating); a lookup-only \
                   cache may be justified with lint:allow(det-unordered-collection)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: None,
            graph: false,
            matcher: match_unordered_collection,
        },
        Rule {
            id: "det-wall-clock",
            family: Family::Determinism,
            summary: "wall-clock read (Instant/SystemTime) outside the obs clock \
                      facade: every timestamp must flow through the Clock trait so \
                      deterministic runs can install NullClock",
            hint: "take timings from ropus_obs::{Clock, WallClock} (or the clock on \
                   the obs collector); only crates/obs/src/clock.rs may read \
                   std::time, or justify with lint:allow(det-wall-clock)",
            exempt_tests: true,
            scope: Scope::AllButClockFacade,
            warn_scope: None,
            graph: false,
            matcher: match_wall_clock,
        },
        Rule {
            id: "det-rng-adhoc",
            family: Family::Determinism,
            summary: "ad-hoc randomness outside the seeded facade: every random \
                      stream must come from ropus_trace::rng so experiments are \
                      bit-reproducible and forkable per workload",
            hint: "construct randomness via ropus_trace::rng::Rng (seed_from_u64 / \
                   fork); never thread_rng, RandomState hashing, or re-implemented \
                   generator constants",
            exempt_tests: false,
            scope: Scope::AllButRngFacade,
            warn_scope: None,
            graph: false,
            matcher: match_rng_adhoc,
        },
        Rule {
            id: "det-taint",
            family: Family::Determinism,
            summary: "nondeterminism sink reachable from a deterministic pipeline \
                      entry point (FitEngine / EngineSession / chaos replay / \
                      translate): the planning pipeline must stay a pure function \
                      of its inputs",
            hint: "route the call chain through the obs clock facade or the seeded \
                   rng facade, or break the edge; justify a provably inert sink \
                   with lint:allow(det-taint) at the sink site",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: None,
            graph: true,
            matcher: |_| None,
        },
        Rule {
            id: "panic-unwrap",
            family: Family::PanicFreedom,
            summary: "unwrap() aborts the process on Err/None: errors must \
                      surface as typed Results",
            hint: "propagate with `?` or a typed error; for a provable invariant \
                   use expect() with lint:allow(panic-expect) and a justification",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: PANIC_WARN,
            graph: false,
            matcher: match_unwrap,
        },
        Rule {
            id: "panic-expect",
            family: Family::PanicFreedom,
            summary: "expect() without a recorded invariant",
            hint: "propagate with `?` where the failure is reachable; where it is \
                   a local invariant, keep expect() and add \
                   lint:allow(panic-expect): <why the invariant holds>",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: PANIC_WARN,
            graph: false,
            matcher: match_expect,
        },
        Rule {
            id: "panic-macro",
            family: Family::PanicFreedom,
            summary: "panic!/unreachable!/todo!/unimplemented! aborts the process \
                      (assert! is permitted: it documents preconditions)",
            hint: "return a typed error; for genuinely unreachable arms justify \
                   with lint:allow(panic-macro)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: PANIC_WARN,
            graph: false,
            matcher: match_panic_macro,
        },
        Rule {
            id: "panic-slice-index",
            family: Family::PanicFreedom,
            summary: "slice/Vec indexing with a non-literal index: out-of-bounds \
                      panics are the most common library abort",
            hint: "prefer get()/first()/last() or iterators; loop-counter indexing \
                   whose bound is the indexed length may be justified with \
                   lint:allow(panic-slice-index) or a lints.toml entry",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: PANIC_WARN,
            graph: false,
            matcher: match_slice_index,
        },
        Rule {
            id: "panic-reach",
            family: Family::PanicFreedom,
            summary: "panic site in a private function reachable from a public \
                      API: the abort surfaces to callers who never see it in the \
                      signature",
            hint: "make the private helper return a typed error and propagate, or \
                   justify the site with lint:allow on its per-site panic rule \
                   (which also clears this path)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: PANIC_WARN,
            graph: true,
            matcher: |_| None,
        },
        Rule {
            id: "unit-float-cast",
            family: Family::UnitSafety,
            summary: "bare float<->int `as` cast in QoS formula code: silently \
                      erases units and saturates/truncates out of range",
            hint: "use the qos::units helpers (units::count for counts->f64, \
                   checked conversions for float->int)",
            exempt_tests: true,
            scope: Scope::Qos,
            warn_scope: None,
            graph: false,
            matcher: match_float_cast,
        },
        Rule {
            id: "unit-float-eq",
            family: Family::UnitSafety,
            summary: "exact ==/!= against a float literal in QoS formula code",
            hint: "use qos::units::approx_eq / units::is_zero (epsilon \
                   comparisons) instead of bitwise float equality",
            exempt_tests: true,
            scope: Scope::Qos,
            warn_scope: None,
            graph: false,
            matcher: match_float_eq,
        },
        Rule {
            id: "needless-trace-clone",
            family: Family::Efficiency,
            summary: "deep copy of a trace sample buffer (samples().to_vec() and \
                      friends): traces share one immutable Arc buffer, so \
                      Trace::clone() and weeks_range() are O(1) while a sample \
                      copy is O(len) per call",
            hint: "borrow via samples()/view() (TraceView is Copy), clone the \
                   Trace itself, or window with weeks_range(); a genuine \
                   ownership hand-off (e.g. sorting for percentiles) may be \
                   justified with lint:allow(needless-trace-clone)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: None,
            graph: false,
            matcher: match_trace_sample_copy,
        },
        Rule {
            id: "robust-result-discard",
            family: Family::Robustness,
            summary: "silently discarded statement result (`let _ = ...;` or a \
                      bare `.ok();`): if the expression returns a Result, the \
                      failure vanishes without a trace",
            hint: "handle or propagate the error (`?`, match, or log through a \
                   typed path); a genuinely ignorable Result may be justified \
                   with lint:allow(robust-result-discard)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: None,
            graph: false,
            matcher: match_result_discard,
        },
        Rule {
            id: "obs-static-name",
            family: Family::Observability,
            summary: "observability recording call with a computed name: span \
                      and metric names are the obs layer's stable vocabulary \
                      and must be string literals or registry constants",
            hint: "pass a \"layer.noun.verb\" literal or a names:: constant; \
                   put variable data in event attributes or samples, never in \
                   the name; a deliberate indirection may be justified with \
                   lint:allow(obs-static-name)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: Some(Scope::Relaxed),
            graph: false,
            matcher: match_obs_dynamic_name,
        },
        Rule {
            id: "obs-name-registry",
            family: Family::Observability,
            summary: "metric/span name not declared in the obs name registry \
                      (crates/obs/src/names.rs): every recording site — and \
                      every named constructor (burn-rate rules, subscribe \
                      stream line kinds) — must use a name the registry \
                      declares so the vocabulary cannot drift silently",
            hint: "add a `pub const` for the name to crates/obs/src/names.rs \
                   (grouped by layer) or reference an existing names:: constant; \
                   a deliberately unregistered name may be justified with \
                   lint:allow(obs-name-registry)",
            exempt_tests: true,
            scope: Scope::LibCrates,
            warn_scope: Some(Scope::Relaxed),
            graph: true,
            matcher: |_| None,
        },
        Rule {
            id: "lint-allow-syntax",
            family: Family::Meta,
            summary: "malformed lint:allow marker: unknown rule id or missing \
                      `: justification`",
            hint: "write `lint:allow(<known-rule-id>): <why the invariant holds>`",
            exempt_tests: false,
            scope: Scope::All,
            warn_scope: None,
            graph: false,
            // Produced by the driver from the comment stream, never from code.
            matcher: |_| None,
        },
    ]
}

/// True if `id` names a registered rule.
pub fn is_known_rule(id: &str) -> bool {
    registry().iter().any(|r| r.id == id)
}

/// Collapses the registry's wrapped string literals to single-line text
/// for diagnostics.
pub fn oneline(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn find_any(line: &str, tokens: &[&str]) -> Option<usize> {
    tokens.iter().filter_map(|t| line.find(t)).min()
}

pub(crate) fn match_unordered_collection(line: &str) -> Option<usize> {
    find_any(line, &["HashMap", "HashSet"])
}

pub(crate) fn match_wall_clock(line: &str) -> Option<usize> {
    find_any(line, &["Instant", "SystemTime", "UNIX_EPOCH"])
}

pub(crate) fn match_rng_adhoc(line: &str) -> Option<usize> {
    find_any(
        line,
        &[
            "thread_rng",
            "from_entropy",
            "RandomState",
            "DefaultHasher",
            // SplitMix64 / golden-gamma constants: the signature of a
            // re-implemented generator outside the facade.
            "0x9E3779B97F4A7C15",
            "0x9e3779b97f4a7c15",
            "0xBF58476D1CE4E5B9",
            "0x94D049BB133111EB",
        ],
    )
}

pub(crate) fn match_unwrap(line: &str) -> Option<usize> {
    line.find(".unwrap()")
}

pub(crate) fn match_expect(line: &str) -> Option<usize> {
    line.find(".expect(")
}

pub(crate) fn match_panic_macro(line: &str) -> Option<usize> {
    find_any(
        line,
        &["panic!(", "unreachable!(", "todo!(", "unimplemented!("],
    )
}

/// Indexing expression `recv[index]` where `index` is not an integer
/// literal and not the full range `..`. Literal indexing of fixed-size
/// arrays is infallible-by-inspection, so it is left alone.
pub(crate) fn match_slice_index(line: &str) -> Option<usize> {
    if line.trim_start().starts_with('#') {
        // Attribute, e.g. `#[serde(default)]` — bracket syntax, not indexing.
        return None;
    }
    let chars: Vec<char> = line.chars().collect();
    let mut i = 1usize;
    while i < chars.len() {
        if chars[i] != '[' {
            i += 1;
            continue;
        }
        let prev = chars[i - 1];
        let is_receiver = prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']';
        if !is_receiver {
            i += 1;
            continue;
        }
        // Find the matching close bracket on this line.
        let mut depth = 1i32;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            // Index expression spans lines: out of reach for a line matcher.
            return None;
        }
        let index: String = chars[i + 1..j - 1].iter().collect();
        let index = index.trim();
        let literal = !index.is_empty() && index.chars().all(|c| c.is_ascii_digit() || c == '_');
        if !index.is_empty() && !literal && index != ".." {
            return Some(i);
        }
        i = j;
    }
    None
}

/// Int→float `as f64/f32`, or a rounding-method result cast straight to an
/// integer type (`.ceil() as usize` and friends).
pub(crate) fn match_float_cast(line: &str) -> Option<usize> {
    for token in [" as f64", " as f32"] {
        if let Some(p) = line.find(token) {
            let after = line[p + token.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                return Some(p + 1);
            }
        }
    }
    find_any(
        line,
        &[
            ".ceil() as ",
            ".floor() as ",
            ".round() as ",
            ".trunc() as ",
        ],
    )
}

/// Deep copy of a trace's sample buffer: `.to_vec()` / `.to_owned()` /
/// `.clone()` applied to a `samples` binding or a `samples()` accessor.
/// Plain `Trace::clone()` is *not* matched — it is an O(1) refcount bump
/// and the encouraged way to keep a trace around.
pub(crate) fn match_trace_sample_copy(line: &str) -> Option<usize> {
    find_any(
        line,
        &[
            "samples().to_vec()",
            "samples.to_vec()",
            "samples().to_owned()",
            "samples.to_owned()",
            "samples().clone()",
            "samples.clone()",
        ],
    )
}

/// Wildcard discard `let _ = ...` (any statement result thrown away
/// unnamed — the idiom that silently swallows `Result`s), or a statement
/// whose entire effect is `expr.ok();`. Bindings (`let x = y.ok();`),
/// assignments, and `return y.ok();` keep the value and are left alone.
pub(crate) fn match_result_discard(line: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(p) = line[from..].find("let _") {
        let at = from + p;
        let before_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let rest = &line[at + 5..];
        let boundary = rest
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let binds = rest.trim_start().starts_with('=') && !rest.trim_start().starts_with("==");
        if before_ok && boundary && binds {
            return Some(at);
        }
        from = at + 5;
    }
    let trimmed = line.trim();
    if trimmed.ends_with(".ok();") && !trimmed.contains('=') && !trimmed.starts_with("return") {
        return line.find(".ok();");
    }
    None
}

/// Obs recording call (`.span(`, `.event(`, `.counter(`, ...) whose first
/// argument does not start with a string literal. Masked lines keep their
/// quote characters, so checking the first non-space character after `(`
/// against `"` works even though string *contents* are blanked. A call
/// whose arguments wrap to the next line is out of reach for a line
/// matcher and is left alone (mirroring `match_slice_index`).
/// `ObsReport` lookups and `WorkloadManager::observe` deliberately do not
/// share these method names, so they never fire here.
///
/// A SCREAMING_SNAKE constant path (`names::QOS_TRANSLATIONS`) is also
/// accepted: it is still a static name, and the `obs-name-registry` rule
/// verifies that the constant actually resolves to the registry.
pub(crate) fn match_obs_dynamic_name(line: &str) -> Option<usize> {
    let mut hit: Option<usize> = None;
    for token in OBS_RECORDING_CALLS {
        let mut from = 0usize;
        while let Some(p) = line[from..].find(token) {
            let at = from + p;
            let after = line[at + token.len()..].trim_start();
            if !after.is_empty() && !after.starts_with('"') && !is_const_name_ref(after) {
                hit = Some(hit.map_or(at, |h| h.min(at)));
            }
            from = at + token.len();
        }
    }
    hit
}

/// The obs recording methods whose first argument is a name. Shared with
/// the `obs-name-registry` token pass (which strips the `.`/`(`).
pub(crate) const OBS_RECORDING_CALLS: [&str; 6] = [
    ".span(",
    ".event(",
    ".counter(",
    ".timing_counter(",
    ".gauge(",
    ".histogram(",
];

/// Types whose `::new` takes a registry name as its first argument:
/// burn-rate alert rules and `serve` subscribe stream lines. The
/// `obs-name-registry` token pass checks `Type::new(<name>, ...)` sites
/// against the registry just like recording calls.
pub(crate) const OBS_NAMED_CONSTRUCTORS: [&str; 2] = ["BurnRateRule", "StreamLine"];

/// Whether an argument string starts with a constant-name path: the
/// terminal `::` segment is SCREAMING_SNAKE (so plain variables and
/// method calls do not qualify).
fn is_const_name_ref(after: &str) -> bool {
    let end = after
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(after.len());
    let last = after[..end].rsplit("::").next().unwrap_or("");
    !last.is_empty()
        && last
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && last.chars().any(|c| c.is_ascii_uppercase())
}

/// `==` / `!=` with a float literal on either side.
pub(crate) fn match_float_eq(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let op = &line[i..i + 2];
        let is_eq = op == "==" || op == "!=";
        let standalone = is_eq
            && (i == 0 || !matches!(bytes[i - 1], b'=' | b'!' | b'<' | b'>'))
            && bytes.get(i + 2) != Some(&b'=');
        if standalone {
            let left = trailing_token(&line[..i]);
            let right = leading_token(&line[i + 2..]);
            if is_float_literal(left) || is_float_literal(right) {
                return Some(i);
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    None
}

fn trailing_token(s: &str) -> &str {
    let s = s.trim_end();
    let start = s
        .rfind(|c: char| !c.is_alphanumeric() && c != '_' && c != '.')
        .map_or(0, |p| p + 1);
    &s[start..]
}

fn leading_token(s: &str) -> &str {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(s.len());
    &s[..end]
}

fn is_float_literal(token: &str) -> bool {
    token.chars().next().is_some_and(|c| c.is_ascii_digit()) && token.contains('.')
}
