//! Source preprocessing for the invariant linter.
//!
//! Rule matchers must never fire on prose: a doc example that calls
//! `unwrap()` or a diagnostic string that mentions `HashMap` is not a
//! violation. This module therefore masks comments and string-literal
//! *contents* out of every line (preserving column positions), records
//! which lines sit inside `#[cfg(test)]` items (tests and benches are
//! exempt from most rules), and extracts `// lint:allow(rule): reason`
//! escape hatches from the comment stream.

/// A preprocessed source file ready for rule matching.
pub struct Masked {
    /// Per-line code with comments and string contents blanked to spaces.
    /// Each line has the same character length as the original, so match
    /// offsets are real column numbers.
    pub code: Vec<String>,
    /// Per-line comment text (line, block, and doc comments).
    pub comments: Vec<String>,
    /// Per-line flag: the line belongs to a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

/// One `lint:allow(...)` occurrence found in a comment.
pub struct AllowRef {
    /// The rule id between the parentheses (possibly unknown).
    pub rule: String,
    /// 0-based line of the comment.
    pub line: usize,
    /// Whether the marker is followed by `: <non-empty justification>`.
    pub has_reason: bool,
    /// Whether the marker was syntactically complete (closing paren found).
    pub well_formed: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Masks comments and string contents out of `source`.
pub fn mask(source: &str) -> Masked {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut state = State::Code;
    let mut i = 0usize;

    // Appends to the current (last) line of a buffer.
    fn push(buf: &mut [String], c: char) {
        if let Some(last) = buf.last_mut() {
            last.push(c);
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push(String::new());
            comments.push(String::new());
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    push(&mut code, ' ');
                    push(&mut code, ' ');
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    push(&mut code, ' ');
                    push(&mut code, ' ');
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    push(&mut code, '"');
                    state = State::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // Emit the `r`/`br` prefix and the hashes, then mask
                    // the body until `"` followed by the same hash count.
                    let mut j = i;
                    while chars[j] != '"' {
                        push(&mut code, chars[j]);
                        j += 1;
                    }
                    push(&mut code, '"');
                    let hashes = j - i - usize::from(chars[i] == 'b') - 1;
                    state = State::RawStr(hashes as u32);
                    i = j + 1;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    // Mask the char literal body, keep the quotes.
                    push(&mut code, '\'');
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        if chars[j] == '\\' {
                            push(&mut code, ' ');
                            j += 1;
                        }
                        if j < chars.len() && chars[j] != '\n' {
                            push(&mut code, ' ');
                        }
                        j += 1;
                    }
                    if j < chars.len() {
                        push(&mut code, '\'');
                        j += 1;
                    }
                    i = j;
                } else {
                    push(&mut code, c);
                    i += 1;
                }
            }
            State::LineComment => {
                push(&mut code, ' ');
                push(&mut comments, c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    push(&mut code, ' ');
                    push(&mut code, ' ');
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    push(&mut code, ' ');
                    push(&mut code, ' ');
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    push(&mut code, ' ');
                    push(&mut comments, c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    push(&mut code, ' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        push(&mut code, ' ');
                    }
                    i += 2;
                } else if c == '"' {
                    push(&mut code, '"');
                    state = State::Code;
                    i += 1;
                } else {
                    push(&mut code, ' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    push(&mut code, '"');
                    for _ in 0..hashes {
                        push(&mut code, '#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    push(&mut code, ' ');
                    i += 1;
                }
            }
        }
    }

    let in_test = mark_tests(&code);
    Masked {
        code,
        comments,
        in_test,
    }
}

/// `r"`, `r#"`, `br"`, ... at position `i`, not preceded by an ident char.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = match chars[i] {
        'r' => i + 1,
        'b' if chars.get(i + 1) == Some(&'r') => i + 2,
        _ => return false,
    };
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `"` at position `i` followed by `hashes` `#` characters.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line that belongs to a `#[cfg(test)]` item: from the
/// attribute through the matching close brace of the item's block (or the
/// terminating `;` for block-less items).
fn mark_tests(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut l = 0usize;
    while l < code.len() {
        let Some(col) = code[l].find("#[cfg(test)]") else {
            l += 1;
            continue;
        };
        let start = l;
        let mut depth: i64 = 0;
        let mut seen_brace = false;
        let mut pos = col + "#[cfg(test)]".len();
        let mut ll = l;
        'item: while ll < code.len() {
            for ch in code[ll][pos.min(code[ll].len())..].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_brace && depth == 0 {
                            break 'item;
                        }
                    }
                    ';' if !seen_brace => break 'item,
                    _ => {}
                }
            }
            ll += 1;
            pos = 0;
        }
        let end = ll.min(code.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        l = end + 1;
    }
    in_test
}

/// Extracts every `lint:allow(rule)` marker from the comment stream.
///
/// A well-formed marker is `lint:allow(rule-id): justification` — the
/// justification is mandatory so that every suppressed diagnostic records
/// *why* the invariant holds at that site.
pub fn parse_allows(comments: &[String]) -> Vec<AllowRef> {
    const MARKER: &str = "lint:allow(";
    let mut refs = Vec::new();
    for (line, text) in comments.iter().enumerate() {
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(MARKER) {
            let at = from + rel + MARKER.len();
            let Some(close) = text[at..].find(')') else {
                refs.push(AllowRef {
                    rule: String::new(),
                    line,
                    has_reason: false,
                    well_formed: false,
                });
                break;
            };
            let rule = text[at..at + close].trim().to_string();
            let rest = &text[at + close + 1..];
            let has_reason = rest
                .strip_prefix(':')
                .is_some_and(|r| !leading_reason(r).is_empty());
            refs.push(AllowRef {
                rule,
                line,
                has_reason,
                well_formed: true,
            });
            from = at + close + 1;
        }
    }
    refs
}

/// The justification text: everything up to the next marker, trimmed.
fn leading_reason(rest: &str) -> &str {
    match rest.find("lint:allow(") {
        Some(end) => rest[..end].trim(),
        None => rest.trim(),
    }
}
