//! Source preprocessing for the invariant linter, built on the lossless
//! lexer.
//!
//! Rule matchers must never fire on prose: a doc example that calls
//! `unwrap()` or a diagnostic string that mentions `HashMap` is not a
//! violation. This module therefore derives, from the [`crate::lex`]
//! token stream, per-line *masked* code (comments and string-literal
//! contents blanked to spaces, preserving column positions), the per-line
//! comment text, and the `#[cfg(test)]` region flags. Because the masking
//! is a projection of real tokens rather than a per-character state
//! machine, raw strings (`r#"…"#` at any hash depth), nested block
//! comments, and string line-continuations (`"…\` at end of line) are
//! handled structurally — the old masker mis-tracked line numbers across
//! the latter (see the `masking-edge-cases` regression fixture).

use crate::lex::{self, Token, TokenKind};

/// A preprocessed source file ready for rule matching.
pub struct Masked {
    /// Per-line code with comments and string contents blanked to spaces.
    /// Each line has the same character length as the original, so match
    /// offsets are real column numbers.
    pub code: Vec<String>,
    /// Per-line comment text (line, block, and doc comments).
    pub comments: Vec<String>,
    /// Per-line flag: the line belongs to a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

/// One `lint:allow(...)` occurrence found in a comment.
pub struct AllowRef {
    /// The rule id between the parentheses (possibly unknown).
    pub rule: String,
    /// 0-based line of the comment.
    pub line: usize,
    /// Whether the marker is followed by `: <non-empty justification>`.
    pub has_reason: bool,
    /// Whether the marker was syntactically complete (closing paren found).
    pub well_formed: bool,
}

/// Masks comments and string contents out of `source` (lexes internally).
pub fn mask(source: &str) -> Masked {
    mask_tokens(source, &lex::lex(source))
}

/// Masks comments and string contents using an existing token stream,
/// so workspace passes lex each file exactly once.
pub fn mask_tokens(source: &str, tokens: &[Token]) -> Masked {
    let mut m = MaskBuilder::default();
    for token in tokens {
        let text = token.text(source);
        match token.kind {
            TokenKind::Whitespace
            | TokenKind::Ident
            | TokenKind::Number
            | TokenKind::Punct
            | TokenKind::Lifetime => m.code_verbatim(text),
            TokenKind::LineComment => {
                // `//` (or the first two chars of `///`) become code
                // blanks; the remainder is comment text.
                m.code_blank("//");
                m.comment(&text[2..]);
            }
            TokenKind::BlockComment => m.block_comment(text),
            TokenKind::Str => m.delimited(text, '"'),
            TokenKind::Char => m.delimited(text, '\''),
            TokenKind::RawStr => m.raw_string(text),
        }
    }
    let in_test = mark_tests(&m.code);
    Masked {
        code: m.code,
        comments: m.comments,
        in_test,
    }
}

/// Accumulates the parallel code/comment line buffers. Every `\n`
/// encountered in any token splits both, keeping the vectors aligned
/// with real source lines.
struct MaskBuilder {
    code: Vec<String>,
    comments: Vec<String>,
}

impl Default for MaskBuilder {
    fn default() -> MaskBuilder {
        MaskBuilder {
            code: vec![String::new()],
            comments: vec![String::new()],
        }
    }
}

impl MaskBuilder {
    fn newline(&mut self) {
        self.code.push(String::new());
        self.comments.push(String::new());
    }

    fn push_code(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else if let Some(last) = self.code.last_mut() {
            last.push(c);
        }
    }

    /// Copies text into the code buffer unchanged.
    fn code_verbatim(&mut self, text: &str) {
        for c in text.chars() {
            self.push_code(c);
        }
    }

    /// Blanks text into the code buffer (spaces, newlines preserved).
    fn code_blank(&mut self, text: &str) {
        for c in text.chars() {
            self.push_code(if c == '\n' { '\n' } else { ' ' });
        }
    }

    /// Appends comment text, blanking the same span in the code buffer so
    /// column positions stay aligned (newlines split both buffers).
    fn comment(&mut self, text: &str) {
        for c in text.chars() {
            if c == '\n' {
                self.newline();
            } else {
                if let Some(last) = self.comments.last_mut() {
                    last.push(c);
                }
                self.push_code(' ');
            }
        }
    }

    /// A `/* ... */` token: delimiters (including nested ones) blank to
    /// code spaces only; interior text is comment content.
    fn block_comment(&mut self, text: &str) {
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let pair = (chars.get(i).copied(), chars.get(i + 1).copied());
            if pair == (Some('/'), Some('*')) || pair == (Some('*'), Some('/')) {
                self.push_code(' ');
                self.push_code(' ');
                i += 2;
            } else {
                let c = chars[i];
                if c == '\n' {
                    self.newline();
                } else {
                    self.push_code(' ');
                    if let Some(last) = self.comments.last_mut() {
                        last.push(c);
                    }
                }
                i += 1;
            }
        }
    }

    /// A quoted literal (`"..."`, `'x'`, `b"..."`): prefix and delimiters
    /// stay in the code buffer, the interior blanks to spaces.
    fn delimited(&mut self, text: &str, quote: char) {
        let chars: Vec<char> = text.chars().collect();
        let open = chars.iter().position(|&c| c == quote);
        let close = chars.iter().rposition(|&c| c == quote);
        for (i, &c) in chars.iter().enumerate() {
            let is_delim = Some(i) == open || (Some(i) == close && close > open);
            let keep = is_delim || open.is_none_or(|o| i < o);
            if keep {
                self.push_code(c);
            } else {
                self.push_code(if c == '\n' { '\n' } else { ' ' });
            }
        }
    }

    /// A raw string: the `r##"` prefix and `"##` suffix stay; the body
    /// blanks to spaces.
    fn raw_string(&mut self, text: &str) {
        let chars: Vec<char> = text.chars().collect();
        let open = chars.iter().position(|&c| c == '"').unwrap_or(0);
        let hashes = chars.iter().take(open).filter(|&&c| c == '#').count();
        // The suffix `"##...#` is present only when the literal is
        // terminated; otherwise blank to the end.
        let suffix_len = 1 + hashes;
        let terminated = chars.len() >= open + 1 + suffix_len
            && chars[chars.len() - suffix_len] == '"'
            && chars[chars.len() - suffix_len + 1..]
                .iter()
                .all(|&c| c == '#');
        let body_end = if terminated {
            chars.len() - suffix_len
        } else {
            chars.len()
        };
        for (i, &c) in chars.iter().enumerate() {
            if i <= open || i >= body_end {
                self.push_code(c);
            } else {
                self.push_code(if c == '\n' { '\n' } else { ' ' });
            }
        }
    }
}

/// Marks every line that belongs to a `#[cfg(test)]` item: from the
/// attribute through the matching close brace of the item's block (or the
/// terminating `;` for block-less items).
fn mark_tests(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut l = 0usize;
    while l < code.len() {
        let Some(col) = code[l].find("#[cfg(test)]") else {
            l += 1;
            continue;
        };
        let start = l;
        let mut depth: i64 = 0;
        let mut seen_brace = false;
        let mut pos = col + "#[cfg(test)]".len();
        let mut ll = l;
        'item: while ll < code.len() {
            for ch in code[ll][pos.min(code[ll].len())..].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_brace && depth == 0 {
                            break 'item;
                        }
                    }
                    ';' if !seen_brace => break 'item,
                    _ => {}
                }
            }
            ll += 1;
            pos = 0;
        }
        let end = ll.min(code.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        l = end + 1;
    }
    in_test
}

/// Extracts every `lint:allow(rule)` marker from the comment stream.
///
/// A well-formed marker is `lint:allow(rule-id): justification` — the
/// justification is mandatory so that every suppressed diagnostic records
/// *why* the invariant holds at that site.
pub fn parse_allows(comments: &[String]) -> Vec<AllowRef> {
    const MARKER: &str = "lint:allow(";
    let mut refs = Vec::new();
    for (line, text) in comments.iter().enumerate() {
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(MARKER) {
            let at = from + rel + MARKER.len();
            let Some(close) = text[at..].find(')') else {
                refs.push(AllowRef {
                    rule: String::new(),
                    line,
                    has_reason: false,
                    well_formed: false,
                });
                break;
            };
            let rule = text[at..at + close].trim().to_string();
            let rest = &text[at + close + 1..];
            let has_reason = rest
                .strip_prefix(':')
                .is_some_and(|r| !leading_reason(r).is_empty());
            refs.push(AllowRef {
                rule,
                line,
                has_reason,
                well_formed: true,
            });
            from = at + close + 1;
        }
    }
    refs
}

/// The justification text: everything up to the next marker, trimmed.
fn leading_reason(rest: &str) -> &str {
    match rest.find("lint:allow(") {
        Some(end) => rest[..end].trim(),
        None => rest.trim(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments_preserving_columns() {
        let m = mask("let s = \"HashMap\"; // HashMap prose\nx.unwrap();\n");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap prose"));
        assert_eq!(
            m.code[0].chars().count(),
            "let s = \"HashMap\"; // HashMap prose".chars().count()
        );
        assert!(m.code[1].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_mask_contents_but_keep_delimiters() {
        let m = mask("let s = r#\"unwrap() // HashMap\"#; y.unwrap();\n");
        assert!(!m.code[0].contains("unwrap() // HashMap"));
        assert!(m.code[0].contains("r#\""));
        assert!(m.code[0].contains(".unwrap()"));
        // Nothing after the raw string leaked into the comment stream.
        assert!(m.comments[0].trim().is_empty());
    }

    #[test]
    fn string_line_continuation_keeps_later_lines_aligned() {
        // The old per-character masker skipped the newline after a `\`
        // continuation, shifting every subsequent diagnostic up a line.
        let m = mask("let s = \"a\\\nb\";\nfoo.unwrap();\n");
        assert_eq!(m.code.len(), 4);
        assert!(m.code[2].contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let m = mask("/* outer /* inner */ still comment */ x.unwrap();\n");
        assert!(m.code[0].contains(".unwrap()"));
        assert!(!m.code[0].contains("inner"));
        assert!(m.comments[0].contains("still comment"));
    }
}
