//! The fixture manifest: every rule's tripping/passing fixture pair,
//! embedded at compile time and shared by the integration tests and
//! `xtask lint --self-check`.
//!
//! Self-check exists because the linter is itself load-bearing CI
//! machinery: a refactor that silently stops a rule from firing would
//! otherwise look like a green gate. Running the fixture pairs through
//! the real lint pipeline proves each rule still trips where it must and
//! stays quiet where it must not.

use crate::config::Config;
use crate::report::Diagnostic;
use crate::{lint_files, SourceFile};

/// One rule's fixture pair and its expectations.
pub struct Case {
    /// The rule the bad fixture must trip.
    pub rule: &'static str,
    /// Fixture directory name under `tests/fixtures/`.
    pub dir: &'static str,
    /// Virtual repo-relative path inside the rule's scope.
    pub path: &'static str,
    /// Source that must trip the rule.
    pub bad: &'static str,
    /// Source that must stay clean.
    pub good: &'static str,
    /// 1-based line of the first diagnostic of `rule` in the bad fixture.
    pub first_line: usize,
    /// Whether *only* `rule` may fire on the bad fixture. Graph rules
    /// overlap their per-site counterparts (an unwrap reachable from a
    /// public API also trips `panic-unwrap`), so they opt out.
    pub strict: bool,
    /// Whether diagnostics must carry call-path evidence.
    pub graph: bool,
    /// Extra virtual files linted alongside (e.g. the obs name registry).
    pub extra: &'static [(&'static str, &'static str)],
}

const LIB_PATH: &str = "crates/core/src/fixture.rs";
const QOS_PATH: &str = "crates/qos/src/fixture.rs";

/// Virtual registry file backing the `obs-name-registry` fixtures.
pub const REGISTRY_FIXTURE: (&str, &str) = (
    "crates/obs/src/names.rs",
    include_str!("../tests/fixtures/obs-name-registry/registry.rs"),
);

macro_rules! case {
    ($rule:literal, $dir:literal, $path:expr, $first_line:expr,
     strict: $strict:expr, graph: $graph:expr, extra: $extra:expr) => {
        Case {
            rule: $rule,
            dir: $dir,
            path: $path,
            bad: include_str!(concat!("../tests/fixtures/", $dir, "/bad.rs")),
            good: include_str!(concat!("../tests/fixtures/", $dir, "/good.rs")),
            first_line: $first_line,
            strict: $strict,
            graph: $graph,
            extra: $extra,
        }
    };
    ($rule:literal, $path:expr, $first_line:expr) => {
        case!($rule, $rule, $path, $first_line, strict: true, graph: false, extra: &[])
    };
}

/// The manifest, in registry order. Every rule in [`crate::rules`] has at
/// least one entry (`lint_fixtures.rs` asserts the coverage).
pub fn cases() -> Vec<Case> {
    vec![
        case!("det-unordered-collection", LIB_PATH, 3),
        case!("det-wall-clock", LIB_PATH, 3),
        case!("det-rng-adhoc", "crates/trace/src/gen/fixture.rs", 5),
        case!(
            "det-taint", "det-taint", LIB_PATH, 17,
            strict: true, graph: true, extra: &[]
        ),
        case!("panic-unwrap", LIB_PATH, 5),
        case!("panic-expect", LIB_PATH, 5),
        case!("panic-macro", LIB_PATH, 6),
        case!("panic-slice-index", LIB_PATH, 7),
        case!(
            "panic-reach", "panic-reach", LIB_PATH, 9,
            strict: false, graph: true, extra: &[]
        ),
        case!("unit-float-cast", QOS_PATH, 5),
        case!("unit-float-eq", QOS_PATH, 5),
        case!("needless-trace-clone", LIB_PATH, 5),
        case!("robust-result-discard", LIB_PATH, 5),
        case!("obs-static-name", LIB_PATH, 6),
        case!(
            "obs-name-registry", "obs-name-registry", LIB_PATH, 5,
            strict: true, graph: true, extra: &[REGISTRY_FIXTURE]
        ),
        case!("lint-allow-syntax", LIB_PATH, 5),
        // Regression pair for the lexer-backed masking: raw strings,
        // nested block comments, and string line-continuations must not
        // hide a real site or skew its reported line (the old
        // per-character masker lost a line after each continuation).
        case!(
            "panic-unwrap", "masking-edge-cases", LIB_PATH, 11,
            strict: true, graph: false, extra: &[]
        ),
    ]
}

/// Lints one fixture source (plus the case's extra files) through the
/// full multi-file pipeline.
pub fn lint_fixture(case: &Case, source: &str, config: &Config) -> Vec<Diagnostic> {
    let mut files: Vec<SourceFile> = case
        .extra
        .iter()
        .map(|(path, text)| SourceFile {
            path: (*path).to_string(),
            source: (*text).to_string(),
        })
        .collect();
    files.push(SourceFile {
        path: case.path.to_string(),
        source: source.to_string(),
    });
    lint_files(&files, config)
}

/// Runs every fixture pair through the lint pipeline. Returns a one-line
/// summary on success, or the list of expectation failures.
pub fn self_check() -> Result<String, Vec<String>> {
    let config = Config::default();
    let mut failures = Vec::new();
    let all = cases();
    for case in &all {
        let label = format!("{} ({})", case.rule, case.dir);
        let bad = lint_fixture(case, case.bad, &config);
        let hits: Vec<&Diagnostic> = bad.iter().filter(|d| d.rule == case.rule).collect();
        if hits.is_empty() {
            failures.push(format!("{label}: bad fixture did not trip the rule"));
            continue;
        }
        if hits[0].line != case.first_line {
            failures.push(format!(
                "{label}: first diagnostic at line {}, expected {}",
                hits[0].line, case.first_line
            ));
        }
        if case.strict {
            for d in bad.iter().filter(|d| d.rule != case.rule) {
                failures.push(format!(
                    "{label}: unexpected co-firing {} at {}:{}",
                    d.rule, d.file, d.line
                ));
            }
        }
        if case.graph {
            for d in &hits {
                if d.path.is_empty() {
                    failures.push(format!(
                        "{label}: diagnostic at line {} has no call-path evidence",
                        d.line
                    ));
                }
            }
        }
        let good = lint_fixture(case, case.good, &config);
        for d in &good {
            failures.push(format!(
                "{label}: good fixture tripped {} at {}:{}",
                d.rule, d.file, d.line
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "self-check: {} fixture pair(s) behaved as expected",
            all.len()
        ))
    } else {
        Err(failures)
    }
}
