//! A lossless, dependency-free Rust lexer.
//!
//! The linter's old preprocessor was a per-character masking state
//! machine; it could not see token boundaries, mis-tracked lines across
//! string continuations (`"...\` at end of line), and every rule had to
//! re-derive structure from masked text. This module replaces it with a
//! real tokenizer: [`lex`] splits a source file into a contiguous tiling
//! of [`Token`]s such that re-concatenating the token texts reproduces
//! the input byte-for-byte (property-tested over every `.rs` file in the
//! workspace). Comments, string literals (including raw strings with any
//! hash depth and byte strings), char literals vs lifetimes, nested block
//! comments, and numeric literals are classified structurally instead of
//! by masking heuristics.
//!
//! The lexer is deliberately *lossless and forgiving*: malformed input
//! (an unterminated string, a stray quote) never panics and never drops
//! bytes — the remainder of the file is swept into the current token so
//! downstream passes still see every byte exactly once.

/// The lexical class of a token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, and other whitespace runs.
    Whitespace,
    /// `// ...` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */`, nested to any depth (includes `/** */` doc comments).
    BlockComment,
    /// `"..."` or `b"..."`, escapes handled.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##`, any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` — a character or byte literal.
    Char,
    /// `'ident` — a lifetime (no closing quote).
    Lifetime,
    /// An identifier or keyword: `fn`, `self`, `HashMap`, `r#type`, ...
    Ident,
    /// A numeric literal: `42`, `1_000u64`, `0x9E37`, `1.5e-3`, ...
    Number,
    /// A single punctuation character: `.({[::<>!?...`
    Punct,
}

/// One token: a classification over a byte range of the source.
///
/// `line` and `col` are 0-based and refer to the token's first byte;
/// columns count characters, matching the old masker's diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 0-based line of the first byte.
    pub line: usize,
    /// 0-based character column of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Tokenizes `source` into a contiguous, lossless tiling.
///
/// Invariants (see the lossless property test):
/// * `tokens[0].start == 0` and `tokens.last().end == source.len()`;
/// * `tokens[i].end == tokens[i + 1].start` for all `i`;
/// * every range falls on `char` boundaries, so re-rendering via
///   [`Token::text`] reproduces the source byte-identically.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    source: &'s str,
    chars: Vec<(usize, char)>,
    /// Index into `chars` of the next unconsumed character.
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Lexer<'s> {
        Lexer {
            source,
            chars: source.char_indices().collect(),
            pos: 0,
            line: 0,
            col: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, index: usize) -> usize {
        self.chars.get(index).map_or(self.source.len(), |&(b, _)| b)
    }

    /// Emits a token covering chars `[from, self.pos)` and advances the
    /// line/column cursor past it.
    fn emit(&mut self, kind: TokenKind, from: usize) {
        let start = self.byte_at(from);
        let end = self.byte_at(self.pos);
        self.tokens.push(Token {
            kind,
            start,
            end,
            line: self.line,
            col: self.col,
        });
        for &(_, c) in &self.chars[from..self.pos] {
            if c == '\n' {
                self.line += 1;
                self.col = 0;
            } else {
                self.col += 1;
            }
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let from = self.pos;
            let c = self.chars[self.pos].1;
            match c {
                c if c.is_whitespace() => {
                    while self.peek(0).is_some_and(char::is_whitespace) {
                        self.pos += 1;
                    }
                    self.emit(TokenKind::Whitespace, from);
                }
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.pos += 1;
                    }
                    self.emit(TokenKind::LineComment, from);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, from);
                }
                '"' => {
                    self.string_body();
                    self.emit(TokenKind::Str, from);
                }
                '\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, from);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.emit(TokenKind::Number, from);
                }
                c if is_ident_start(c) => {
                    let kind = self.ident_or_prefixed_literal();
                    self.emit(kind, from);
                }
                _ => {
                    self.pos += 1;
                    self.emit(TokenKind::Punct, from);
                }
            }
        }
        self.tokens
    }

    /// Consumes `/* ... */` with nesting; an unterminated comment sweeps
    /// to end of input.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 && self.pos < self.chars.len() {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a `"..."` body starting at the opening quote. Escapes
    /// (`\"`, `\\`, and `\<newline>` continuations) are skipped; an
    /// unterminated string sweeps to end of input.
    fn string_body(&mut self) {
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2.min(self.chars.len() - self.pos),
                '"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes `r"..."` / `r#"..."#` bodies where `self.pos` sits on the
    /// opening quote and `hashes` `#`s were already consumed.
    fn raw_string_body(&mut self, hashes: usize) {
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                self.pos += 1 + hashes;
                return;
            }
            self.pos += 1;
        }
    }

    /// At a `'`: either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`). A lifetime is an identifier after the quote *not*
    /// followed by a closing quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => {
                // `'a` lifetime unless a quote closes it (`'a'` char).
                let mut k = 2;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                self.peek(k) != Some('\'') || k > 2
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 2;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        // Char literal: consume until the closing quote on this line.
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2.min(self.chars.len() - self.pos),
                '\'' => {
                    self.pos += 1;
                    return TokenKind::Char;
                }
                '\n' => return TokenKind::Char, // malformed; don't cross lines
                _ => self.pos += 1,
            }
        }
        TokenKind::Char
    }

    /// Consumes a numeric literal: integer/float bodies, `0x`/`0o`/`0b`
    /// prefixes, `_` separators, exponents, and type suffixes. A `.`
    /// joins the number only when followed by a digit (so `1..n` and
    /// `1.max(2)` lex the dot as punctuation).
    fn number(&mut self) {
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Exponent sign: `1e-3` / `1E+3`.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 2;
                }
                self.pos += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// An identifier — or the prefix of a string literal (`r"`, `b"`,
    /// `br#"`, `r#"`) or raw identifier (`r#type`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let c = self.chars[self.pos].1;
        // Raw string / byte string prefixes must be checked before the
        // identifier rule eats the `r`/`b`.
        if c == 'r' || c == 'b' {
            let mut k = 1;
            if c == 'b' && self.peek(1) == Some('r') {
                k = 2;
            }
            let mut hashes = 0usize;
            while self.peek(k + hashes) == Some('#') {
                hashes += 1;
            }
            let raw_capable = c == 'r' || k == 2;
            if raw_capable && self.peek(k + hashes) == Some('"') {
                self.pos += k + hashes;
                self.raw_string_body(hashes);
                return TokenKind::RawStr;
            }
            if c == 'b' && k == 1 && hashes == 0 && self.peek(1) == Some('"') {
                self.pos += 1;
                self.string_body();
                return TokenKind::Str;
            }
            if c == 'b' && k == 1 && hashes == 0 && self.peek(1) == Some('\'') {
                // Byte literal b'x'.
                self.pos += 1;
                self.char_or_lifetime();
                return TokenKind::Char;
            }
            if c == 'r' && hashes == 1 && self.peek(1 + hashes).is_some_and(is_ident_start) {
                // Raw identifier r#type.
                self.pos += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                return TokenKind::Ident;
            }
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The string *content* of a `Str`/`RawStr` token (delimiters stripped,
/// escapes left as written). Returns `None` for other kinds.
pub fn literal_content<'s>(token: &Token, source: &'s str) -> Option<&'s str> {
    let text = token.text(source);
    match token.kind {
        TokenKind::Str => {
            let body = text.strip_prefix('b').unwrap_or(text);
            let body = body.strip_prefix('"')?;
            Some(body.strip_suffix('"').unwrap_or(body))
        }
        TokenKind::RawStr => {
            let body = text.strip_prefix('b').unwrap_or(text);
            let body = body.strip_prefix('r')?;
            let hashes = body.chars().take_while(|&c| c == '#').count();
            let body = &body[hashes..];
            let body = body.strip_prefix('"')?;
            let tail: String = format!("\"{}", "#".repeat(hashes));
            Some(body.strip_suffix(tail.as_str()).unwrap_or(body))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(source: &str) -> String {
        lex(source).iter().map(|t| t.text(source)).collect()
    }

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lossless_on_tricky_inputs() {
        for source in [
            "fn main() { let x = 1; }\n",
            "let s = r#\"raw \"quote\" // not a comment\"#;\n",
            "let s = r##\"hash \"# inside\"##;\n",
            "/* outer /* nested */ still */ fn f() {}\n",
            "let s = \"line\\\n continuation\"; x.unwrap();\n",
            "let c = 'x'; let l: &'static str = \"\"; let e = '\\n';\n",
            "let b = b\"bytes\"; let br = br#\"raw bytes\"#; let bc = b'q';\n",
            "let n = 1.5e-3 + 0x9E37_u64 + 1_000; for i in 0..n {}\n",
            "let r#type = 3; 'label: loop { break 'label; }\n",
            "\"unterminated\nfn g() {}",
            "/* unterminated",
            "",
        ] {
            assert_eq!(render(source), source, "lossless failed on {source:?}");
        }
    }

    #[test]
    fn classifies_raw_strings_and_nested_comments() {
        assert_eq!(
            kinds("r#\"x\"# /* a /* b */ c */ 'a 'b' ident 1.5"),
            vec![
                TokenKind::RawStr,
                TokenKind::BlockComment,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Ident,
                TokenKind::Number,
            ]
        );
    }

    #[test]
    fn string_continuation_keeps_line_numbers() {
        let source = "let s = \"a\\\nb\";\nfoo.unwrap();\n";
        let tokens = lex(source);
        let unwrap = tokens
            .iter()
            .find(|t| t.text(source) == "unwrap")
            .expect("unwrap token");
        // The string body spans lines 0-1, so `unwrap` sits on line 2.
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn literal_content_strips_delimiters() {
        let source = "\"abc\" r#\"d\"e\"# b\"f\"";
        let tokens: Vec<Token> = lex(source)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .collect();
        assert_eq!(literal_content(&tokens[0], source), Some("abc"));
        assert_eq!(literal_content(&tokens[1], source), Some("d\"e"));
        assert_eq!(literal_content(&tokens[2], source), Some("f"));
    }

    #[test]
    fn dot_is_punct_in_ranges_and_method_calls() {
        let source = "1..n 1.max(2) 2.5.floor()";
        let texts: Vec<&str> = lex(source)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.text(source))
            .collect();
        assert_eq!(
            texts,
            vec!["1", ".", ".", "n", "1", ".", "max", "(", "2", ")", "2.5", ".", "floor", "(", ")"]
        );
    }
}
