//! `cargo run -p xtask -- lint` — the workspace invariant gate.
//!
//! Exit codes: 0 clean (warnings allowed), 2 rule violations found,
//! 1 analyzer internal error (bad usage, unreadable workspace, or a
//! failed `--self-check`). CI gates on 2 and treats 1 as a tooling
//! failure rather than a code problem.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::config::Config;
use xtask::{fixtures, report, rules};

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [options]

options:
    --format <text|json|sarif>   output format (default: text)
    --root <dir>                 workspace root (default: autodetected)
    --config <path>              lints.toml path (default: <root>/crates/xtask/lints.toml)
    --list-rules                 print the rule registry and exit
    --self-check                 run the linter over its own fixture pairs and exit

exit codes: 0 clean, 2 violations found, 1 internal error
";

/// Violations found: the caller should fail the gate.
const EXIT_VIOLATIONS: u8 = 2;
/// The analyzer itself failed (usage, I/O, or self-check).
const EXIT_INTERNAL: u8 = 1;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("xtask: {message}");
            ExitCode::from(EXIT_INTERNAL)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("lint") => {}
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }

    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut self_check = false;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--format" => {
                format = iter
                    .next()
                    .ok_or_else(|| format!("--format needs a value\n{USAGE}"))?
                    .clone();
                if format != "text" && format != "json" && format != "sarif" {
                    return Err(format!("unknown format `{format}`\n{USAGE}"));
                }
            }
            "--root" => {
                root = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| format!("--root needs a value\n{USAGE}"))?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| format!("--config needs a value\n{USAGE}"))?,
                ));
            }
            "--list-rules" => list_rules = true,
            "--self-check" => self_check = true,
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }

    if list_rules {
        for rule in rules::registry() {
            println!(
                "{:<26} {:<14} scope: {}",
                rule.id,
                rule.family.label(),
                rule.scope.describe()
            );
            println!("{:<26} {}", "", rules::oneline(rule.summary));
        }
        return Ok(ExitCode::SUCCESS);
    }

    if self_check {
        return match fixtures::self_check() {
            Ok(summary) => {
                println!("{summary}");
                Ok(ExitCode::SUCCESS)
            }
            Err(failures) => {
                for failure in &failures {
                    eprintln!("self-check: {failure}");
                }
                Err(format!(
                    "self-check failed with {} error(s)",
                    failures.len()
                ))
            }
        };
    }

    // Default root: this crate lives at <root>/crates/xtask.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let config_path = config_path.unwrap_or_else(|| root.join("crates/xtask/lints.toml"));
    let config = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        Config::default()
    };

    let outcome = xtask::lint_workspace(&root, &config)?;
    let rendered = match format.as_str() {
        "json" => report::render_json(&outcome.diagnostics, outcome.files_scanned),
        "sarif" => report::render_sarif(&outcome.diagnostics),
        _ => report::render_text(&outcome.diagnostics, outcome.files_scanned),
    };
    println!("{rendered}");
    if outcome.errors() == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_VIOLATIONS))
    }
}
