//! An approximate workspace call graph over the symbol table.
//!
//! Edges are resolved by *name plus hints*, not types — the analyzer has
//! no type checker, so resolution is deliberately conservative (DESIGN.md
//! §5g lists the approximations):
//!
//! * `self.method(...)` resolves to methods of the enclosing `impl`'s
//!   self type, anywhere in the workspace;
//! * `Type::assoc(...)` / `module::func(...)` path calls resolve to
//!   functions whose impl qualifier matches the path qualifier, or to
//!   functions living in a file or crate matching a snake-case module
//!   qualifier;
//! * bare `func(...)` calls resolve to free functions with that name;
//! * `expr.method(...)` with an unknown receiver resolves only when the
//!   workspace has exactly one non-test definition of that name —
//!   ambiguous method names are dropped rather than over-linked, so the
//!   graph under-approximates dynamic dispatch instead of drowning the
//!   taint rules in false paths.
//!
//! Test functions are excluded as both callers and callees: the graph
//! models the production pipeline only.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lex::{Token, TokenKind};
use crate::symbols::{significant, FileSymbols};

/// A function node: (file index, fn index within that file's symbols).
pub type FnId = (usize, usize);

/// One resolved call site, kept for evidence rendering.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee node.
    pub to: FnId,
    /// 0-based line of the call site in the caller's file.
    pub line: usize,
}

/// The workspace call graph: adjacency by caller node.
#[derive(Default)]
pub struct CallGraph {
    /// Outgoing edges per caller, deduplicated by callee, in source order.
    pub edges: BTreeMap<FnId, Vec<Edge>>,
}

/// A call site extracted from a function body, before resolution.
struct CallSite {
    name: String,
    /// `Type::name(...)` / `module::name(...)` qualifier segment.
    qualifier: Option<String>,
    /// `self.name(...)`.
    self_receiver: bool,
    /// Any `expr.name(...)` method call.
    method: bool,
    line: usize,
}

/// Method names so common on std types that a unique workspace
/// definition is almost certainly not the real callee (every `Vec::push`
/// would otherwise link to the one `fn push` in the repo). Calls with an
/// unknown receiver and one of these names are never linked; `self.` and
/// `Type::` calls still resolve normally.
const UBIQUITOUS_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "extend",
    "drain",
    "take",
    "replace",
    "push_str",
    "entry",
    "keys",
    "values",
    "sort",
    "sort_by",
    "retain",
    "split",
    "join",
    "parse",
    "write",
    "read",
    "flush",
    "lock",
    "send",
    "recv",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "round",
    "to_string",
    "clamp",
    "last",
    "first",
    "swap",
    "reverse",
    "position",
    "find",
    "map",
    "filter",
    "fold",
    "sum",
    "count",
    "collect",
    "new",
    "default",
    "from",
    "into",
    "try_into",
    "as_ref",
    "as_mut",
    "to_owned",
    "fmt",
    "eq",
    "cmp",
    "hash",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "where", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "unsafe", "async", "await", "dyn",
];

/// Builds the call graph for a set of files. `files` pairs each file's
/// source with its lexed tokens; `symbols` is the per-file symbol table
/// in the same order.
pub fn build(files: &[(&str, &[Token])], symbols: &[&FileSymbols]) -> CallGraph {
    // Name index: fn name → all non-test definitions.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (f, syms) in symbols.iter().enumerate() {
        for (i, item) in syms.fns.iter().enumerate() {
            if !item.is_test {
                by_name.entry(item.name.as_str()).or_default().push((f, i));
            }
        }
    }

    let mut graph = CallGraph::default();
    for (f, (source, tokens)) in files.iter().enumerate() {
        let sig = significant(tokens);
        for (i, item) in symbols[f].fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let sites = call_sites(source, tokens, &sig, item.body.clone());
            let mut seen: BTreeSet<FnId> = BTreeSet::new();
            let mut out = Vec::new();
            for site in sites {
                for to in resolve(&site, (f, i), symbols, &by_name) {
                    if to != (f, i) && seen.insert(to) {
                        out.push(Edge {
                            to,
                            line: site.line,
                        });
                    }
                }
            }
            if !out.is_empty() {
                graph.edges.insert((f, i), out);
            }
        }
    }
    graph
}

/// Extracts call sites from a body's significant-token range.
fn call_sites(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    body: std::ops::Range<usize>,
) -> Vec<CallSite> {
    let text = |k: usize| tokens[sig[k]].text(source);
    let mut sites = Vec::new();
    for k in body.clone() {
        if tokens[sig[k]].kind != TokenKind::Ident {
            continue;
        }
        let name = text(k);
        if KEYWORDS.contains(&name) {
            continue;
        }
        // A call is `ident (` — macros (`ident !`) never match.
        if k + 1 >= body.end || text(k + 1) != "(" {
            continue;
        }
        let prev = (k > body.start).then(|| text(k - 1));
        let mut site = CallSite {
            name: name.to_string(),
            qualifier: None,
            self_receiver: false,
            method: false,
            line: tokens[sig[k]].line,
        };
        match prev {
            Some(".") => {
                site.method = true;
                if k >= body.start + 2 && text(k - 2) == "self" {
                    // `self.name(...)` — but not `expr.self...` (not a
                    // thing) and not a field access chain: `self.a.b()`
                    // has `a` before the final dot, handled below.
                    site.self_receiver = true;
                }
            }
            // `path::name(...)` — the qualifier is the ident before the
            // double colon.
            Some(":")
                if k >= body.start + 3
                    && text(k - 2) == ":"
                    && tokens[sig[k - 3]].kind == TokenKind::Ident =>
            {
                site.qualifier = Some(text(k - 3).to_string());
            }
            _ => {}
        }
        sites.push(site);
    }
    sites
}

/// Resolves one call site to candidate callee nodes.
fn resolve(
    site: &CallSite,
    caller: FnId,
    symbols: &[&FileSymbols],
    by_name: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    let Some(candidates) = by_name.get(site.name.as_str()) else {
        return Vec::new();
    };
    let qual_of = |id: FnId| symbols[id.0].fns[id.1].qual.as_deref();

    if site.self_receiver {
        // Methods of the caller's own impl type.
        let caller_qual = qual_of(caller).map(str::to_string);
        if let Some(q) = caller_qual {
            return candidates
                .iter()
                .copied()
                .filter(|&id| qual_of(id) == Some(q.as_str()))
                .collect();
        }
        return Vec::new();
    }
    if let Some(q) = &site.qualifier {
        // `Type::assoc(...)`: impl-qualifier match first.
        let typed: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| qual_of(id) == Some(q.as_str()))
            .collect();
        if !typed.is_empty() {
            return typed;
        }
        // `module::func(...)`: free fns in a file or crate matching the
        // snake-case module name.
        let needle_file = format!("/{q}.rs");
        let needle_dir = format!("/{q}/");
        return candidates
            .iter()
            .copied()
            .filter(|&id| {
                qual_of(id).is_none() && {
                    let path = &symbols[id.0].path;
                    path.ends_with(&needle_file)
                        || path.contains(&needle_dir)
                        || path.contains(&format!("crates/{q}/"))
                        || crate_of(path).replace('-', "_") == *q
                }
            })
            .collect();
    }
    if site.method {
        // Unknown receiver: link only when the name is unambiguous and
        // not a ubiquitous std method name.
        if candidates.len() == 1 && !UBIQUITOUS_METHODS.contains(&site.name.as_str()) {
            return candidates.clone();
        }
        return Vec::new();
    }
    // Bare call: free functions named `name`; prefer the caller's own
    // file (shadowing by locals is invisible to us, so same-file first
    // keeps paths honest), else any free fn.
    let free: Vec<FnId> = candidates
        .iter()
        .copied()
        .filter(|&id| qual_of(id).is_none())
        .collect();
    let local: Vec<FnId> = free
        .iter()
        .copied()
        .filter(|&id| id.0 == caller.0)
        .collect();
    if !local.is_empty() {
        return local;
    }
    free
}

/// The crate segment of a repo-relative path (`crates/<name>/...`), or
/// the first path segment otherwise.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| path.split('/').next().unwrap_or(path))
}

/// One step of a call-path evidence chain.
#[derive(Clone, PartialEq, Debug)]
pub struct PathStep {
    /// Qualified symbol, e.g. `FitEngine::evaluate` or `helper`.
    pub symbol: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the function declaration (or call site).
    pub line: usize,
}

/// Breadth-first reachability from `entries`, recording one shortest
/// predecessor per node so paths can be reconstructed deterministically.
pub struct Reachability {
    /// Predecessor edge per reached node (absent for the entries).
    pred: BTreeMap<FnId, FnId>,
    /// All reached nodes, including the entries themselves.
    reached: BTreeSet<FnId>,
    entries: BTreeSet<FnId>,
}

impl CallGraph {
    /// Computes the set of nodes reachable from `entries` (inclusive).
    pub fn reach(&self, entries: &[FnId]) -> Reachability {
        let mut pred = BTreeMap::new();
        let mut reached: BTreeSet<FnId> = entries.iter().copied().collect();
        let mut queue: VecDeque<FnId> = entries.iter().copied().collect();
        while let Some(node) = queue.pop_front() {
            for edge in self.edges.get(&node).into_iter().flatten() {
                if reached.insert(edge.to) {
                    pred.insert(edge.to, node);
                    queue.push_back(edge.to);
                }
            }
        }
        Reachability {
            pred,
            reached,
            entries: entries.iter().copied().collect(),
        }
    }
}

impl Reachability {
    /// Whether `node` is reachable (entries count as reachable).
    pub fn contains(&self, node: FnId) -> bool {
        self.reached.contains(&node)
    }

    /// Whether `node` is one of the entry points themselves.
    pub fn is_entry(&self, node: FnId) -> bool {
        self.entries.contains(&node)
    }

    /// The entry-to-`node` call chain (inclusive at both ends), as
    /// function ids. Empty if `node` was never reached.
    pub fn path_to(&self, node: FnId) -> Vec<FnId> {
        if !self.contains(node) {
            return Vec::new();
        }
        let mut chain = vec![node];
        let mut cursor = node;
        while let Some(&p) = self.pred.get(&cursor) {
            chain.push(p);
            cursor = p;
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::scan;
    use crate::symbols::extract;

    fn build_one(path: &str, source: &str) -> (Vec<Token>, FileSymbols) {
        let tokens = lex(source);
        let masked = scan::mask_tokens(source, &tokens);
        let mut syms = extract(source, &tokens, &masked.in_test, false);
        syms.path = path.to_string();
        (tokens, syms)
    }

    #[test]
    fn self_calls_and_free_calls_link() {
        let src = "impl Engine {\n    pub fn run(&self) { self.step(); helper(); }\n    fn step(&self) {}\n}\nfn helper() { leaf(); }\nfn leaf() {}\n";
        let (tokens, owned) = build_one("crates/core/src/x.rs", src);
        let files: Vec<(&str, &[Token])> = vec![(src, &tokens)];
        let syms: Vec<&FileSymbols> = vec![&owned];
        let graph = build(&files, &syms);
        let run = (0usize, 0usize);
        let callees: Vec<&str> = graph.edges[&run]
            .iter()
            .map(|e| syms[0].fns[e.to.1].name.as_str())
            .collect();
        assert_eq!(callees, vec!["step", "helper"]);
        let reach = graph.reach(&[run]);
        let leaf = (0usize, 3usize);
        assert!(reach.contains(leaf));
        let chain = reach.path_to(leaf);
        let names: Vec<&str> = chain
            .iter()
            .map(|id| syms[0].fns[id.1].name.as_str())
            .collect();
        assert_eq!(names, vec!["run", "helper", "leaf"]);
    }

    #[test]
    fn ambiguous_methods_are_dropped() {
        let src = "impl A {\n    fn go(&self) {}\n}\nimpl B {\n    fn go(&self) {}\n}\npub fn call(x: &A) { x.go(); }\n";
        let (tokens, owned) = build_one("crates/core/src/x.rs", src);
        let files: Vec<(&str, &[Token])> = vec![(src, &tokens)];
        let syms: Vec<&FileSymbols> = vec![&owned];
        let graph = build(&files, &syms);
        let call = (0usize, 2usize);
        assert!(
            !graph.edges.contains_key(&call),
            "ambiguous go() must not link"
        );
    }
}
