//! Fixture-driven linter tests: every rule ships one tripping and one
//! passing fixture, asserted down to the exact rule id and line in the
//! JSON output.
//!
//! The fixture manifest itself lives in `xtask::fixtures` so that
//! `xtask lint --self-check` runs the same pairs in CI; the tests here
//! layer on the assertions that need test-only machinery (exact JSON
//! shape, call-path snapshots, the real workspace walk, and the lexer
//! losslessness sweep).

use xtask::config::Config;
use xtask::fixtures::{cases, lint_fixture, self_check};
use xtask::lex;
use xtask::report::{error_count, render_json, render_text};
use xtask::rules::{registry, Severity};
use xtask::{lint_source, lint_workspace};

const LIB_PATH: &str = "crates/core/src/fixture.rs";

#[test]
fn every_bad_fixture_trips_its_rule_at_the_expected_line() {
    let config = Config::default();
    for case in cases() {
        let diagnostics = lint_fixture(&case, case.bad, &config);
        let hits: Vec<_> = diagnostics.iter().filter(|d| d.rule == case.rule).collect();
        assert!(
            !hits.is_empty(),
            "{} ({}): bad fixture produced no {} diagnostics",
            case.rule,
            case.dir,
            case.rule
        );
        if case.strict {
            for d in &diagnostics {
                assert_eq!(
                    d.rule, case.rule,
                    "{} ({}): unexpected co-firing rule {} at line {}",
                    case.rule, case.dir, d.rule, d.line
                );
            }
        }
        assert_eq!(
            hits[0].line, case.first_line,
            "{} ({}): first diagnostic at wrong line",
            case.rule, case.dir
        );
        assert_eq!(hits[0].file, case.path, "{}: wrong file", case.rule);
        if case.graph {
            for d in &hits {
                assert!(
                    !d.path.is_empty(),
                    "{} ({}): graph diagnostic at line {} carries no call path",
                    case.rule,
                    case.dir,
                    d.line
                );
            }
        }

        let json = render_json(&diagnostics, 1);
        assert!(
            json.contains(&format!("\"rule\":\"{}\"", case.rule)),
            "{}: rule id missing from JSON: {json}",
            case.rule
        );
        assert!(
            json.contains(&format!("\"line\":{}", case.first_line)),
            "{}: line missing from JSON: {json}",
            case.rule
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    let config = Config::default();
    for case in cases() {
        let diagnostics = lint_fixture(&case, case.good, &config);
        assert!(
            diagnostics.is_empty(),
            "{} ({}): good fixture tripped: {:?}",
            case.rule,
            case.dir,
            diagnostics
                .iter()
                .map(|d| format!("{}:{} {}", d.line, d.column, d.rule))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_registered_rule_has_a_fixture_pair() {
    let covered: std::collections::BTreeSet<&str> = cases().iter().map(|c| c.rule).collect();
    for rule in registry() {
        assert!(
            covered.contains(rule.id),
            "rule {} has no fixture pair in the manifest",
            rule.id
        );
    }
}

#[test]
fn self_check_passes_on_the_shipped_fixtures() {
    match self_check() {
        Ok(summary) => assert!(summary.contains("behaved as expected"), "{summary}"),
        Err(failures) => panic!("self-check failed:\n{}", failures.join("\n")),
    }
}

/// The call-path evidence is part of the report contract: snapshot the
/// full text rendering of the det-taint fixture so a formatting change
/// (or a graph regression that shortens the path) is a visible diff.
#[test]
fn det_taint_call_path_snapshot() {
    let config = Config::default();
    let case = cases()
        .into_iter()
        .find(|c| c.rule == "det-taint")
        .expect("det-taint fixture exists");
    let diagnostics = lint_fixture(&case, case.bad, &config);
    let text = render_text(&diagnostics, 1);
    let expected = "\
crates/core/src/fixture.rs:17:19 error[det-taint] deterministic entry point `FitEngine::shard` reaches a site that branches on the current thread identity (1 call step(s) away)
    hint: route the call chain through the obs clock facade or the seeded rng facade, or break the edge; justify a provably inert sink with lint:allow(det-taint) at the sink site
    path: FitEngine::shard (crates/core/src/fixture.rs:11)
      -> pick_lane (crates/core/src/fixture.rs:16)
      -> sink: branches on the current thread identity (crates/core/src/fixture.rs:17)
xtask lint: 1 error(s), 0 warning(s) in 1 file(s) scanned
";
    assert_eq!(text, expected, "call-path rendering drifted:\n{text}");
}

/// The lexer must be lossless over real code, not just fixtures: token
/// texts concatenated in order reproduce every workspace source file
/// byte-for-byte. This is the property the masking layer (and therefore
/// every line/column in every diagnostic) rests on.
#[test]
fn lexer_is_lossless_over_every_workspace_source_file() {
    let root = workspace_root();
    let mut checked = 0usize;
    for file in walk_rs(&root) {
        let source = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let tokens = lex::lex(&source);
        let mut rebuilt = String::with_capacity(source.len());
        for t in &tokens {
            rebuilt.push_str(t.text(&source));
        }
        assert_eq!(rebuilt, source, "lexer lost bytes in {}", file.display());
        checked += 1;
    }
    assert!(
        checked > 50,
        "losslessness sweep found too few files: {checked}"
    );
}

#[test]
fn rng_facade_is_exempt_from_the_rng_rule() {
    let bad = include_str!("fixtures/det-rng-adhoc/bad.rs");
    let diagnostics = lint_source("crates/trace/src/rng.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().all(|d| d.rule != "det-rng-adhoc"),
        "the facade itself must be allowed to hold generator constants"
    );
}

#[test]
fn clock_facade_is_exempt_from_the_wall_clock_rule() {
    let bad = include_str!("fixtures/det-wall-clock/bad.rs");
    let diagnostics = lint_source("crates/obs/src/clock.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().all(|d| d.rule != "det-wall-clock"),
        "the clock facade itself must be allowed to read std::time"
    );
}

#[test]
fn wall_clock_rule_reaches_beyond_the_library_crates() {
    let bad = include_str!("fixtures/det-wall-clock/bad.rs");
    let diagnostics = lint_source("crates/bench/src/bin/fixture.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().any(|d| d.rule == "det-wall-clock"),
        "bench/cli code must also route timings through the obs clock"
    );
}

#[test]
fn panic_rules_downgrade_to_warnings_in_the_relaxed_tier() {
    let bad = include_str!("fixtures/panic-unwrap/bad.rs");
    let diagnostics = lint_source("examples/fixture.rs", bad, &Config::default());
    let hit = diagnostics
        .iter()
        .find(|d| d.rule == "panic-unwrap")
        .expect("panic-unwrap still fires in examples/");
    assert_eq!(
        hit.severity,
        Severity::Warn,
        "examples/ panics must warn, not gate"
    );
    assert_eq!(error_count(&diagnostics), 0);
}

#[test]
fn cfg_test_code_is_exempt_from_panic_rules() {
    let source = "pub fn noop() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1];\n        let i = 0;\n        assert_eq!(v[i], *v.first().unwrap());\n    }\n}\n";
    let diagnostics = lint_source(LIB_PATH, source, &Config::default());
    assert!(
        diagnostics.is_empty(),
        "test code must be exempt: {:?}",
        diagnostics
            .iter()
            .map(|d| format!("{}:{}", d.rule, d.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn lints_toml_allowlist_suppresses_per_file() {
    let config = Config::parse(&format!("[allow]\npanic-unwrap = [\"{LIB_PATH}\"]\n"))
        .expect("allowlist parses");
    let bad = include_str!("fixtures/panic-unwrap/bad.rs");
    assert!(lint_source(LIB_PATH, bad, &config).is_empty());
    // The allowlist is per-file: the same source elsewhere still trips.
    assert!(!lint_source("crates/qos/src/other.rs", bad, &config).is_empty());
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join("crates/xtask/lints.toml"))
        .expect("lints.toml is readable");
    let config = Config::parse(&config_text).expect("lints.toml parses");
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found too few files: {}",
        report.files_scanned
    );
    // Warnings (the relaxed cli/examples tier) are allowed to exist;
    // errors gate.
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}:{} {}", d.file, d.line, d.rule))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must stay lint-clean: {errors:?}"
    );
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Every `.rs` file the repository tracks: crate sources (xtask and its
/// fixtures included — fixtures are exactly where lexer edge cases
/// live), top-level examples, and integration tests.
fn walk_rs(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
