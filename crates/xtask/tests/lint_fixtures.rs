//! Fixture-driven linter tests: every rule ships one tripping and one
//! passing fixture, asserted down to the exact rule id and line in the
//! JSON output.
//!
//! Fixtures are linted under *virtual* paths so each rule's path scope is
//! exercised without touching the workspace walker; a final test runs the
//! real walker over the repository and requires it to be clean.

use xtask::config::Config;
use xtask::report::render_json;
use xtask::{lint_source, lint_workspace};

struct Case {
    rule: &'static str,
    /// Virtual repo-relative path inside the rule's scope.
    path: &'static str,
    bad: &'static str,
    good: &'static str,
    /// 1-based line of the first diagnostic in the bad fixture.
    first_line: usize,
}

const LIB_PATH: &str = "crates/core/src/fixture.rs";
const QOS_PATH: &str = "crates/qos/src/fixture.rs";

const CASES: &[Case] = &[
    Case {
        rule: "det-unordered-collection",
        path: LIB_PATH,
        bad: include_str!("fixtures/det-unordered-collection/bad.rs"),
        good: include_str!("fixtures/det-unordered-collection/good.rs"),
        first_line: 3,
    },
    Case {
        rule: "det-wall-clock",
        path: LIB_PATH,
        bad: include_str!("fixtures/det-wall-clock/bad.rs"),
        good: include_str!("fixtures/det-wall-clock/good.rs"),
        first_line: 3,
    },
    Case {
        rule: "det-rng-adhoc",
        path: "crates/trace/src/gen/fixture.rs",
        bad: include_str!("fixtures/det-rng-adhoc/bad.rs"),
        good: include_str!("fixtures/det-rng-adhoc/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "panic-unwrap",
        path: LIB_PATH,
        bad: include_str!("fixtures/panic-unwrap/bad.rs"),
        good: include_str!("fixtures/panic-unwrap/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "panic-expect",
        path: LIB_PATH,
        bad: include_str!("fixtures/panic-expect/bad.rs"),
        good: include_str!("fixtures/panic-expect/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "panic-macro",
        path: LIB_PATH,
        bad: include_str!("fixtures/panic-macro/bad.rs"),
        good: include_str!("fixtures/panic-macro/good.rs"),
        first_line: 6,
    },
    Case {
        rule: "panic-slice-index",
        path: LIB_PATH,
        bad: include_str!("fixtures/panic-slice-index/bad.rs"),
        good: include_str!("fixtures/panic-slice-index/good.rs"),
        first_line: 7,
    },
    Case {
        rule: "unit-float-cast",
        path: QOS_PATH,
        bad: include_str!("fixtures/unit-float-cast/bad.rs"),
        good: include_str!("fixtures/unit-float-cast/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "unit-float-eq",
        path: QOS_PATH,
        bad: include_str!("fixtures/unit-float-eq/bad.rs"),
        good: include_str!("fixtures/unit-float-eq/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "needless-trace-clone",
        path: LIB_PATH,
        bad: include_str!("fixtures/needless-trace-clone/bad.rs"),
        good: include_str!("fixtures/needless-trace-clone/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "robust-result-discard",
        path: LIB_PATH,
        bad: include_str!("fixtures/robust-result-discard/bad.rs"),
        good: include_str!("fixtures/robust-result-discard/good.rs"),
        first_line: 5,
    },
    Case {
        rule: "obs-static-name",
        path: LIB_PATH,
        bad: include_str!("fixtures/obs-static-name/bad.rs"),
        good: include_str!("fixtures/obs-static-name/good.rs"),
        first_line: 6,
    },
    Case {
        rule: "lint-allow-syntax",
        path: LIB_PATH,
        bad: include_str!("fixtures/lint-allow-syntax/bad.rs"),
        good: include_str!("fixtures/lint-allow-syntax/good.rs"),
        first_line: 5,
    },
];

#[test]
fn every_bad_fixture_trips_exactly_its_rule_at_the_expected_line() {
    let config = Config::default();
    for case in CASES {
        let diagnostics = lint_source(case.path, case.bad, &config);
        assert!(
            !diagnostics.is_empty(),
            "{}: bad fixture produced no diagnostics",
            case.rule
        );
        for d in &diagnostics {
            assert_eq!(
                d.rule, case.rule,
                "{}: unexpected co-firing rule {} at line {}",
                case.rule, d.rule, d.line
            );
            assert_eq!(d.file, case.path, "{}: wrong file", case.rule);
        }
        assert_eq!(
            diagnostics[0].line, case.first_line,
            "{}: first diagnostic at wrong line",
            case.rule
        );

        let json = render_json(&diagnostics, 1);
        assert!(
            json.contains(&format!("\"rule\":\"{}\"", case.rule)),
            "{}: rule id missing from JSON: {json}",
            case.rule
        );
        assert!(
            json.contains(&format!("\"line\":{}", case.first_line)),
            "{}: line missing from JSON: {json}",
            case.rule
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    let config = Config::default();
    for case in CASES {
        let diagnostics = lint_source(case.path, case.good, &config);
        assert!(
            diagnostics.is_empty(),
            "{}: good fixture tripped: {:?}",
            case.rule,
            diagnostics
                .iter()
                .map(|d| format!("{}:{} {}", d.line, d.column, d.rule))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn rng_facade_is_exempt_from_the_rng_rule() {
    let bad = include_str!("fixtures/det-rng-adhoc/bad.rs");
    let diagnostics = lint_source("crates/trace/src/rng.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().all(|d| d.rule != "det-rng-adhoc"),
        "the facade itself must be allowed to hold generator constants"
    );
}

#[test]
fn clock_facade_is_exempt_from_the_wall_clock_rule() {
    let bad = include_str!("fixtures/det-wall-clock/bad.rs");
    let diagnostics = lint_source("crates/obs/src/clock.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().all(|d| d.rule != "det-wall-clock"),
        "the clock facade itself must be allowed to read std::time"
    );
}

#[test]
fn wall_clock_rule_reaches_beyond_the_library_crates() {
    let bad = include_str!("fixtures/det-wall-clock/bad.rs");
    let diagnostics = lint_source("crates/bench/src/bin/fixture.rs", bad, &Config::default());
    assert!(
        diagnostics.iter().any(|d| d.rule == "det-wall-clock"),
        "bench/cli code must also route timings through the obs clock"
    );
}

#[test]
fn cfg_test_code_is_exempt_from_panic_rules() {
    let source = "pub fn noop() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1];\n        let i = 0;\n        assert_eq!(v[i], *v.first().unwrap());\n    }\n}\n";
    let diagnostics = lint_source(LIB_PATH, source, &Config::default());
    assert!(
        diagnostics.is_empty(),
        "test code must be exempt: {:?}",
        diagnostics
            .iter()
            .map(|d| format!("{}:{}", d.rule, d.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn lints_toml_allowlist_suppresses_per_file() {
    let config = Config::parse(&format!("[allow]\npanic-unwrap = [\"{LIB_PATH}\"]\n"))
        .expect("allowlist parses");
    let bad = include_str!("fixtures/panic-unwrap/bad.rs");
    assert!(lint_source(LIB_PATH, bad, &config).is_empty());
    // The allowlist is per-file: the same source elsewhere still trips.
    assert!(!lint_source("crates/qos/src/other.rs", bad, &config).is_empty());
}

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let config_text = std::fs::read_to_string(root.join("crates/xtask/lints.toml"))
        .expect("lints.toml is readable");
    let config = Config::parse(&config_text).expect("lints.toml parses");
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found too few files: {}",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must stay lint-clean: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{} {}", d.file, d.line, d.rule))
            .collect::<Vec<_>>()
    );
}
