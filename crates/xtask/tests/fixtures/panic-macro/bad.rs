//! Tripping fixture: panic! in a library crate.

/// Validates a probability.
pub fn check(theta: f64) {
    if !(0.0..=1.0).contains(&theta) {
        panic!("theta out of range");
    }
}
