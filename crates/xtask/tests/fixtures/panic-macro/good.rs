//! Passing fixture: assert! documents a precondition and is permitted.

/// Validates a probability.
pub fn check(theta: f64) {
    assert!((0.0..=1.0).contains(&theta), "theta out of range");
}
