//! Passing fixture: the entry points stay on deterministic helpers; the
//! nondeterministic probe exists but no entry path reaches it.

pub struct FitEngine;

impl FitEngine {
    pub fn evaluate(&self) -> usize {
        self.shard()
    }

    fn shard(&self) -> usize {
        lane_count()
    }
}

fn lane_count() -> usize {
    4
}

fn unreached_probe() -> usize {
    let id = std::thread::current().id();
    format!("{id:?}").len()
}
