//! Tripping fixture: a FitEngine entry point reaches a thread-identity
//! branch two private calls away — only the call graph can see it.

pub struct FitEngine;

impl FitEngine {
    pub fn evaluate(&self) -> usize {
        self.shard()
    }

    fn shard(&self) -> usize {
        pick_lane()
    }
}

fn pick_lane() -> usize {
    let id = std::thread::current().id();
    format!("{id:?}").len()
}
