//! Passing fixture: randomness comes from the seeded facade.

use ropus_trace::rng::Rng;

/// Draws from a seeded, forkable stream.
pub fn draw(seed: u64) -> f64 {
    Rng::seed_from_u64(seed).next_f64()
}
