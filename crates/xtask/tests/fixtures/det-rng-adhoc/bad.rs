//! Tripping fixture: a re-implemented SplitMix64 outside the facade.

/// Ad-hoc generator step — the golden-gamma constant gives it away.
pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    *state
}
