//! Tripping fixture: a public API reaches an unwrap() buried in a
//! private helper — the abort escapes through a clean-looking signature.

pub fn plan(input: &[f64]) -> f64 {
    refine(input)
}

fn refine(input: &[f64]) -> f64 {
    *input.first().unwrap()
}
