//! Passing fixture: the helper's invariant is recorded at the site; one
//! allow clears both the per-site rule and the reachability rule.

pub fn plan(input: &[f64]) -> f64 {
    refine(input)
}

fn refine(input: &[f64]) -> f64 {
    // lint:allow(panic-expect): plan() rejects empty input before calling
    *input.first().expect("non-empty input")
}
