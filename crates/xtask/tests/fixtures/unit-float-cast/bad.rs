//! Tripping fixture: a bare count->f64 cast erases the unit.

/// Mean of a sample set.
pub fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}
