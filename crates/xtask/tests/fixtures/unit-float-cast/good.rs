//! Passing fixture: the blessed helper names the conversion.

/// Mean of a sample set.
pub fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / crate::units::count(samples.len())
}
