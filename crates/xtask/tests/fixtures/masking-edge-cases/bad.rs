//! Tripping fixture: raw strings, nested block comments, and string
//! line-continuations must not hide the real unwrap() or skew its line.

pub fn edge() -> usize {
    let banner = r#"unwrap() " inside a raw string is prose"#;
    /* outer /* nested unwrap() */ still one comment */
    let wrapped = "a\
b";
    let combo = banner.len() + wrapped.len();
    let v = vec![combo];
    v.first().unwrap();
    combo
}
