//! Passing fixture: the same masking shapes with no panic site.

pub fn edge() -> usize {
    let banner = r##"has "quotes" and unwrap() prose"##;
    /* outer /* nested */ done */
    let wrapped = "a\
b";
    banner.len() + wrapped.len()
}
