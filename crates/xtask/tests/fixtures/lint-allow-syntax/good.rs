//! Passing fixture: a well-formed marker with a recorded reason.

/// First sample of a non-empty, validated set.
pub fn first(samples: &[f64]) -> f64 {
    // lint:allow(panic-slice-index): callers validate non-empty input.
    samples[chosen_index(samples)]
}

fn chosen_index(_samples: &[f64]) -> usize {
    0
}
