//! Tripping fixture: markers missing a reason or naming unknown rules.

/// Clamp helper annotated with two malformed allow markers.
pub fn clamp(x: f64) -> f64 {
    // lint:allow(panic-slice-index)
    // lint:allow(no-such-rule): the reason is present but the rule is not
    x.max(0.0)
}
