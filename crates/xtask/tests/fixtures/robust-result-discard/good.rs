//! Passing fixture: results are propagated, named, or justified.

/// Propagates the failure to the caller.
pub fn save(path: &str, data: &str) -> std::io::Result<()> {
    std::fs::write(path, data)
}

/// Binding the converted value keeps it observable.
pub fn try_cleanup(path: &str) -> bool {
    let removed = std::fs::remove_file(path).ok();
    removed.is_some()
}

/// Named discards document what is being ignored.
pub fn partial((keep, _rest): (u32, u32)) -> u32 {
    let _rest = _rest;
    keep
}

/// A justified discard: best-effort telemetry must never fail the caller.
pub fn flush_telemetry(path: &str) {
    // lint:allow(robust-result-discard): telemetry is best-effort by
    // contract; the caller must not fail when the sink is unavailable.
    let _ = std::fs::write(path, "tick");
}

#[cfg(test)]
mod tests {
    #[test]
    fn discards_are_fine_in_tests() {
        let _ = "scratch".parse::<u32>();
        "scratch".parse::<u32>().ok();
    }
}
