//! Tripping fixture: statement results silently thrown away.

/// Discards the write result — a full disk becomes a silent no-op.
pub fn save(path: &str, data: &str) {
    let _ = std::fs::write(path, data);
}

/// A bare `.ok();` statement: converts the error to `None` and drops it.
pub fn cleanup(path: &str) {
    std::fs::remove_file(path).ok();
}
