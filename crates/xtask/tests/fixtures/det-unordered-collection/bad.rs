//! Tripping fixture: HashMap in a deterministic library path.

use std::collections::HashMap;

/// Scores keyed by member set — iteration order would leak into reports.
pub fn scores() -> HashMap<u64, f64> {
    HashMap::new()
}
