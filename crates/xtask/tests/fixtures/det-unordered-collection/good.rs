//! Passing fixture: an ordered map keeps report iteration deterministic.

use std::collections::BTreeMap;

/// Scores keyed by member set, iterated in key order.
pub fn scores() -> BTreeMap<u64, f64> {
    BTreeMap::new()
}
