//! Passing fixture: literal names; variable data rides in attributes.

/// Records the translation under a stable, greppable name.
pub fn record(obs: &ropus_obs::Obs, app: &str) {
    obs.counter("qos.translations", 1);
    obs.event("qos.translated").with_str("app", app).emit();
}
