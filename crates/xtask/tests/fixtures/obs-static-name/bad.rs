//! Tripping fixture: a metric name assembled at runtime.

/// Records a per-app counter under a computed, ungreppable name.
pub fn record(obs: &ropus_obs::Obs, app: &str) {
    let name = format!("apps.{app}.translated");
    obs.counter(&name, 1);
}
