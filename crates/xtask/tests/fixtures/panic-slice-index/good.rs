//! Passing fixture: iterators make the bound explicit.

/// Sum of the first `n` samples (fewer when the slice is shorter).
pub fn prefix_sum(samples: &[f64], n: usize) -> f64 {
    samples.iter().take(n).sum()
}
