//! Tripping fixture: non-literal indexing panics out of bounds.

/// Sum of the first `n` samples.
pub fn prefix_sum(samples: &[f64], n: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..n {
        total += samples[i];
    }
    total
}
