//! Tripping fixture: a wall-clock read inside a scoring path.

use std::time::Instant;

/// Scores a plan and (wrongly) folds timing into the result.
pub fn score() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
