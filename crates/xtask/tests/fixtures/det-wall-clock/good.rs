//! Passing fixture: the caller owns the clock; scoring is pure.

/// Scores a plan as a pure function of its inputs.
pub fn score(required: f64, capacity: f64) -> f64 {
    required / capacity
}
