//! Passing fixture: absence surfaces as an Option; tests may unwrap.

/// Returns the first sample, if any.
pub fn first(samples: &[f64]) -> Option<f64> {
    samples.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[1.0]).unwrap(), 1.0);
    }
}
