//! Tripping fixture: unwrap() aborts the process on None.

/// Returns the first sample.
pub fn first(samples: &[f64]) -> f64 {
    samples.first().copied().unwrap()
}
