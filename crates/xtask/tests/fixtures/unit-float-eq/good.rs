//! Passing fixture: epsilon comparison via the units helpers.

/// Whether a demand slot is idle.
pub fn is_idle(demand: f64) -> bool {
    crate::units::is_zero(demand)
}
