//! Tripping fixture: exact equality against a float literal.

/// Whether a demand slot is idle.
pub fn is_idle(demand: f64) -> bool {
    demand == 0.0
}
