//! Passing fixture: the invariant is recorded next to the expect().

/// Length of a week in slots for the fixed 5-minute calendar.
pub fn slots() -> usize {
    // lint:allow(panic-expect): 288 * 7 cannot overflow usize.
    288usize.checked_mul(7).expect("constant product fits")
}
