//! Tripping fixture: expect() without a recorded invariant.

/// Parses a ratio that callers may get wrong.
pub fn ratio(text: &str) -> f64 {
    text.parse().expect("caller passes a number")
}
