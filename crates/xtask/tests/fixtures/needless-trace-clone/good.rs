//! Passing fixture: borrow the shared buffer; clone the Trace (O(1)) when
//! ownership is genuinely needed.

/// Sums the demand samples without copying them.
pub fn demand_total(trace: &ropus_trace::Trace) -> f64 {
    trace.samples().iter().sum()
}

/// Keeps the trace itself: a refcount bump, not a buffer copy.
pub fn keep(trace: &ropus_trace::Trace) -> ropus_trace::Trace {
    trace.clone()
}

/// A justified hand-off: sorting needs an owned, mutable copy.
pub fn sorted(trace: &ropus_trace::Trace) -> Vec<f64> {
    // lint:allow(needless-trace-clone): sorting requires a mutable copy.
    let mut v = trace.samples().to_vec();
    v.sort_by(f64::total_cmp);
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn copies_are_fine_in_tests() {
        let samples = vec![1.0, 2.0];
        assert_eq!(samples.clone(), samples.to_vec());
    }
}
