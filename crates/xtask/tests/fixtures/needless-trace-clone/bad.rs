//! Tripping fixture: copying the whole sample buffer per call.

/// Returns the demand samples for aggregation.
pub fn demand_samples(trace: &ropus_trace::Trace) -> Vec<f64> {
    trace.samples().to_vec()
}
