//! Tripping fixture: recording sites whose names the registry never
//! declared — a typo'd literal and an unregistered local constant.

pub fn record(ctx: &Ctx) {
    ctx.counter("placement.engine.evals", 1);
    ctx.span(PIPELINE_TRANSLATE_TYPO);
}

pub fn rules() -> Vec<BurnRateRule> {
    vec![BurnRateRule::new("slo.burn.typo", 12, 144, 6.0)]
}

pub fn stream() -> StreamLine {
    StreamLine::new("watch.stream.typo", 0)
}

const PIPELINE_TRANSLATE_TYPO: &str = "pipeline.translate";
