//! Tripping fixture: recording sites whose names the registry never
//! declared — a typo'd literal and an unregistered local constant.

pub fn record(ctx: &Ctx) {
    ctx.counter("placement.engine.evals", 1);
    ctx.span(PIPELINE_TRANSLATE_TYPO);
}

const PIPELINE_TRANSLATE_TYPO: &str = "pipeline.translate";
