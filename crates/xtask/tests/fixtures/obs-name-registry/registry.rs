//! Fixture registry: the declared obs name vocabulary (linted under the
//! virtual path crates/obs/src/names.rs).

/// Engine evaluation counter.
pub const ENGINE_EVALUATIONS: &str = "placement.engine.evaluations";
/// Translation pipeline span.
pub const PIPELINE_TRANSLATE: &str = "pipeline.translate";

/// Fast-burn alert rule.
pub const SLO_BURN_FAST: &str = "slo.burn.fast";
/// Subscribe stream snapshot-delta line kind.
pub const WATCH_STREAM_DELTA: &str = "watch.stream.delta";
