//! Fixture registry: the declared obs name vocabulary (linted under the
//! virtual path crates/obs/src/names.rs).

/// Engine evaluation counter.
pub const ENGINE_EVALUATIONS: &str = "placement.engine.evaluations";
/// Translation pipeline span.
pub const PIPELINE_TRANSLATE: &str = "pipeline.translate";
