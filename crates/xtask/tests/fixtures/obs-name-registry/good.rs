//! Passing fixture: every recording site resolves to the registry, by
//! literal value or by names:: constant — named constructors included.

pub fn record(ctx: &Ctx) {
    ctx.counter("placement.engine.evaluations", 1);
    ctx.span(names::PIPELINE_TRANSLATE);
}

pub fn rules() -> Vec<BurnRateRule> {
    vec![BurnRateRule::new(names::SLO_BURN_FAST, 12, 144, 6.0)]
}

pub fn stream() -> StreamLine {
    StreamLine::new(names::WATCH_STREAM_DELTA, 0)
}
