//! Passing fixture: every recording site resolves to the registry, by
//! literal value or by names:: constant.

pub fn record(ctx: &Ctx) {
    ctx.counter("placement.engine.evaluations", 1);
    ctx.span(names::PIPELINE_TRANSLATE);
}
